package sim

import (
	"fmt"
	"io"
)

// WriteTable prints the activity counters as a grouped table — the raw
// interface between the performance simulator and the power model, useful
// for inspecting what a kernel actually exercised.
func (a *Activity) WriteTable(w io.Writer) error {
	type row struct {
		name  string
		value uint64
	}
	groups := []struct {
		title string
		rows  []row
	}{
		{"Execution", []row{
			{"cycles", a.Cycles},
			{"instructions issued", a.IssuedInstrs},
			{"INT warp instrs", a.IntWarpInstrs},
			{"FP warp instrs", a.FPWarpInstrs},
			{"SFU warp instrs", a.SFUWarpInstrs},
			{"MEM warp instrs", a.MemWarpInstrs},
			{"CTRL warp instrs", a.CtrlWarpInstrs},
			{"INT thread instrs", a.IntThreadInstrs},
			{"FP thread instrs", a.FPThreadInstrs},
			{"SFU thread instrs", a.SFUThreadInstrs},
		}},
		{"Warp control unit", []row{
			{"I-cache reads", a.ICacheReads},
			{"decodes", a.Decodes},
			{"WST reads", a.WSTReads},
			{"WST writes", a.WSTWrites},
			{"I-buffer reads", a.IBufReads},
			{"I-buffer writes", a.IBufWrites},
			{"scheduler arbitrations", a.SchedArbs},
			{"scoreboard searches", a.SBSearches},
			{"scoreboard writes", a.SBWrites},
			{"reconv stack reads", a.ReconvReads},
			{"reconv stack pushes", a.ReconvPushes},
			{"reconv stack pops", a.ReconvPops},
		}},
		{"Register file", []row{
			{"bank reads", a.RFBankReads},
			{"bank writes", a.RFBankWrites},
			{"collector fills", a.OCWrites},
			{"operand xbar transfers", a.OperandXbar},
		}},
		{"Load/store unit", []row{
			{"AGU addresses", a.AGUAddresses},
			{"coalescer queries", a.CoalescerQueries},
			{"coalesced requests", a.CoalescedReqs},
			{"PRT writes", a.PRTWrites},
			{"SMEM accesses", a.SMemAccesses},
			{"SMEM conflict cycles", a.SMemConflicts},
			{"L1 reads", a.L1Reads},
			{"L1 writes", a.L1Writes},
			{"L1 misses", a.L1Misses},
			{"const reads", a.ConstReads},
			{"const misses", a.ConstMisses},
			{"texture reads", a.TexReads},
			{"texture misses", a.TexMisses},
		}},
		{"Memory system", []row{
			{"L2 reads", a.L2Reads},
			{"L2 writes", a.L2Writes},
			{"L2 misses", a.L2Misses},
			{"NoC flits", a.NoCFlits},
			{"MC requests", a.MCRequests},
			{"DRAM activates", a.DRAMActivates},
			{"DRAM read bursts", a.DRAMReadBursts},
			{"DRAM write bursts", a.DRAMWriteBursts},
			{"PCIe bytes", a.PCIeBytes},
		}},
		{"Occupancy", []row{
			{"blocks launched", a.BlocksLaunched},
			{"warps launched", a.WarpsLaunched},
			{"threads launched", a.ThreadsLaunched},
			{"global scheduler cycles", a.GlobalSchedCycles},
		}},
	}
	for _, g := range groups {
		if _, err := fmt.Fprintf(w, "%s:\n", g.title); err != nil {
			return err
		}
		for _, r := range g.rows {
			if _, err := fmt.Fprintf(w, "  %-26s %14d\n", r.name, r.value); err != nil {
				return err
			}
		}
	}
	var coreBusy uint64
	for _, c := range a.CoreBusyCycles {
		coreBusy += c
	}
	_, err := fmt.Fprintf(w, "  %-26s %14d (summed over %d cores)\n",
		"core busy cycles", coreBusy, len(a.CoreBusyCycles))
	return err
}
