package sim

import (
	"reflect"
	"testing"
)

// TestActivityAddScalarsCoversEveryField keeps addScalars exhaustive: the
// parallel stepper shards every scalar counter, so a new Activity field
// that addScalars does not accumulate would silently drop its counts in
// parallel runs. Every non-slice field must be a uint64 scalar that
// addScalars carries over; the per-core and per-cluster slices are written
// at disjoint indices by the owning worker and are deliberately excluded.
func TestActivityAddScalarsCoversEveryField(t *testing.T) {
	var src, dst Activity
	v := reflect.ValueOf(&src).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(7)
		case reflect.Slice:
			// CoreBusyCycles / ClusterBusyCycles: excluded by design.
		default:
			t.Fatalf("Activity.%s has kind %s; addScalars and the parallel merge only handle uint64 scalars and slices",
				typ.Field(i).Name, f.Kind())
		}
	}
	dst.addScalars(&src)
	w := reflect.ValueOf(dst)
	for i := 0; i < w.NumField(); i++ {
		if w.Field(i).Kind() == reflect.Uint64 && w.Field(i).Uint() != 7 {
			t.Errorf("addScalars does not accumulate Activity.%s", typ.Field(i).Name)
		}
	}
}
