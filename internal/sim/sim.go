package sim

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/runner"
)

// GPU is the cycle-level simulator instance for one configuration.
type GPU struct {
	cfg *config.GPU
}

// New validates the configuration and builds a simulator.
func New(cfg *config.GPU) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WarpSize != kernel.WarpSize {
		return nil, fmt.Errorf("sim: config warp size %d unsupported (ISA is %d-wide)", cfg.WarpSize, kernel.WarpSize)
	}
	return &GPU{cfg: cfg}, nil
}

// Config returns the simulated configuration.
func (g *GPU) Config() *config.GPU { return g.cfg }

// gpuSim is the per-run state.
type gpuSim struct {
	cfg    *config.GPU
	cores  []*coreState
	mem    *memSys
	act    Activity
	launch *kernel.Launch
	global *kernel.GlobalMem
	cmem   *kernel.ConstMem

	// prog/dec are the running program and its decoded instruction table,
	// hoisted once per run for the issue hot path.
	prog *kernel.Program
	dec  []kernel.DInstr

	// seq is the single stepper of the sequential path; pool is the worker
	// set of the parallel path. Exactly one is non-nil per run.
	seq  *stepper
	pool *workerPool

	policy    string
	activeSet int

	// Block dispatch.
	nextBlock   int
	totalBlocks int
	blockSMem   int
	blockRegs   int
	blockDemand struct{ warps int }
	retired     int

	// Incrementally-maintained occupancy state (replaces the per-cycle
	// cluster rescan): clusterCores[cl] counts cores in cluster cl with
	// resident warps, clusterBlocks[cl] counts resident blocks, resident is
	// the chip-wide resident-warp count. Updated at place/retire only.
	clusterCores  []int
	clusterBlocks []int
	resident      int

	// Fast-forward bookkeeping for one clock cycle: progress records whether
	// any state transition happened (event drain, fetch, issue, dispatch,
	// retire); structNext is the earliest cycle a structurally-blocked but
	// otherwise issuable warp's unit frees; busyCores lists the cores that
	// charged a busy cycle.
	progress   bool
	structNext uint64
	busyCores  []int
}

// Run simulates one kernel launch and returns the activity and performance
// results. The global memory image is updated in place (functional
// execution), exactly as a real launch would.
func (g *GPU) Run(l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if cmem == nil {
		cmem = kernel.NewConstMem(0)
	}
	cfg := g.cfg

	s := &gpuSim{cfg: cfg, launch: l, global: global, cmem: cmem}
	s.policy = cfg.SchedulerPolicy
	if s.policy == "" {
		s.policy = PolicyRR
	}
	s.activeSet = cfg.ActiveWarpsPerSched
	if s.activeSet <= 0 {
		s.activeSet = 8
	}
	s.act.CoreBusyCycles = make([]uint64, cfg.NumCores())
	s.act.ClusterBusyCycles = make([]uint64, cfg.Clusters)
	s.clusterCores = make([]int, cfg.Clusters)
	s.clusterBlocks = make([]int, cfg.Clusters)
	s.busyCores = make([]int, 0, cfg.NumCores())

	mem, err := newMemSys(cfg)
	if err != nil {
		return nil, err
	}
	s.mem = mem
	for i := 0; i < cfg.NumCores(); i++ {
		c, err := newCoreState(i, cfg)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}

	// Per-block resource demand.
	s.totalBlocks = l.Grid.Count()
	s.blockDemand.warps = l.WarpsPerBlock()
	s.blockSMem = l.SMemBytes()
	s.blockRegs = l.WarpsPerBlock() * kernel.WarpSize * l.Prog.NumRegs
	if !s.cores[0].canAccept(s.blockDemand.warps, s.blockSMem, s.blockRegs) {
		return nil, fmt.Errorf("sim: block of %d warps / %d B smem / %d regs does not fit on a %s core",
			s.blockDemand.warps, s.blockSMem, s.blockRegs, cfg.Name)
	}

	// Kernel launch traffic over PCIe: parameters + launch descriptor.
	s.act.PCIeBytes += uint64(4*len(l.Params)) + 256

	s.prog = l.Prog
	s.dec = l.Prog.Decoded()

	workers, reserved := resolveSimWorkers(cfg)
	if reserved > 0 {
		defer runner.ReleaseWorkers(reserved)
	}
	if workers > 1 {
		s.pool = newWorkerPool(s, workers)
		defer s.pool.stop()
	} else {
		s.seq = newStepper(s, false)
	}

	if err := s.run(); err != nil {
		return nil, err
	}
	s.mem.finalize(&s.act)

	return s.result(), nil
}

// maxCycles is the per-kernel cycle budget; exceeding it means deadlock.
const maxCycles = 1 << 34

// run is the main clock loop. By default it is event-driven: whenever a
// cycle makes no progress at all (no writeback drained, no warp fetched or
// issued, no block dispatched or retired), the simulated state is a fixed
// point until the next scheduled event, so the loop jumps straight to the
// minimum over all cores' writeback-heap heads, the earliest structural-unit
// free time with a waiter, and the memory system's next completion —
// crediting the per-cycle activity counters for the skipped span in bulk.
// The result is bit-identical to the dense tick-every-cycle loop (enforced
// by TestFastForwardEquivalence); cfg.DenseClock forces the dense loop.
func (s *gpuSim) run() error {
	fastForward := !s.cfg.DenseClock
	var cycle uint64
	for {
		s.progress = false
		s.structNext = ^uint64(0)
		s.dispatch(cycle)

		// Snapshot the counters a quiescent cycle still advances, so a
		// detected stall can be credited in bulk below.
		arbs0, searches0 := s.act.SchedArbs, s.act.SBSearches

		s.busyCores = s.busyCores[:0]
		if s.pool != nil {
			if err := s.stepParallel(cycle); err != nil {
				return err
			}
		} else {
			st := s.seq
			st.reset()
			st.stepRange(0, len(s.cores), cycle)
			if st.err != nil {
				return st.err
			}
			s.mergeStepper(st)
		}
		anyBusy := len(s.busyCores) > 0

		// Cluster occupancy for the base-power model, from the
		// incrementally-maintained per-cluster busy-core counts.
		for cl, n := range s.clusterCores {
			if n > 0 {
				s.act.ClusterBusyCycles[cl]++
			}
		}
		schedActive := s.nextBlock < s.totalBlocks || anyBusy
		if schedActive {
			s.act.GlobalSchedCycles++
		}
		s.act.ResidentWarpCycles += uint64(s.resident)

		cycle++
		if !anyBusy && s.nextBlock >= s.totalBlocks {
			break
		}
		if cycle > maxCycles {
			return fmt.Errorf("sim: cycle budget exceeded for kernel %s (deadlock?)", s.launch.Prog.Name)
		}

		if fastForward && !s.progress {
			if target := s.nextEventCycle(cycle); target > cycle {
				span := target - cycle
				arbD := s.act.SchedArbs - arbs0
				seaD := s.act.SBSearches - searches0
				s.act.SchedArbs += span * arbD
				s.act.SBSearches += span * seaD
				for _, id := range s.busyCores {
					s.act.CoreBusyCycles[id] += span
				}
				for cl, n := range s.clusterCores {
					if n > 0 {
						s.act.ClusterBusyCycles[cl] += span
					}
				}
				if schedActive {
					s.act.GlobalSchedCycles += span
				}
				s.act.ResidentWarpCycles += span * uint64(s.resident)
				cycle = target
			}
		}
	}
	s.act.Cycles = cycle
	return nil
}

// nextEventCycle returns the next cycle at which any simulated state can
// change: the earliest pending writeback across the cores, the earliest
// execution-unit free time a hazard-free warp is waiting on, and the memory
// system's next in-flight completion. If nothing is pending anywhere the
// machine is deadlocked, and the cycle budget is returned so the caller
// reports it immediately instead of ticking 2^34 times first.
func (s *gpuSim) nextEventCycle(now uint64) uint64 {
	next := s.structNext
	for _, c := range s.cores {
		if n := c.nextEventCycle(); n < next {
			next = n
		}
	}
	if n := s.mem.nextEventCycle(now); n < next {
		next = n
	}
	if next == ^uint64(0) {
		return maxCycles + 1
	}
	if next < now {
		return now
	}
	return next
}

// dispatch hands pending blocks to cores, filling empty clusters before
// doubling up — the hardware scheduler behaviour that produces the Fig. 4
// power staircase: "blocks are distributed first not only to unoccupied
// cores, but also to unoccupied clusters".
func (s *gpuSim) dispatch(cycle uint64) {
	for s.nextBlock < s.totalBlocks {
		best := -1
		bestKey := [3]int{1 << 30, 1 << 30, 1 << 30}
		for _, c := range s.cores {
			if !c.canAccept(s.blockDemand.warps, s.blockSMem, s.blockRegs) {
				continue
			}
			key := [3]int{s.clusterBlocks[c.cluster], c.residentBlocks(), c.id}
			if key[0] < bestKey[0] || (key[0] == bestKey[0] && (key[1] < bestKey[1] ||
				(key[1] == bestKey[1] && key[2] < bestKey[2]))) {
				best, bestKey = c.id, key
			}
		}
		if best < 0 {
			return
		}
		c := s.cores[best]
		bid := s.nextBlock
		s.nextBlock++
		cx := bid % s.launch.Grid.X
		cy := bid / s.launch.Grid.X
		bctx := c.takeBlockCtx(s.launch, cx, cy)
		env := &kernel.Env{Global: s.global, Const: s.cmem, Block: bctx}
		wasResident := c.residentWarps()
		b := c.place(s.launch, env, s.blockSMem, s.blockRegs, &s.act)
		s.act.BlocksLaunched++
		s.clusterBlocks[c.cluster]++
		if !wasResident {
			s.clusterCores[c.cluster]++
		}
		s.resident += b.total
		s.progress = true
		// One dispatch per cycle: mirrors the serial hardware scheduler.
		break
	}
}

// result assembles the Result from the collected activity.
func (s *gpuSim) result() *Result {
	a := s.act
	r := &Result{Activity: a}
	r.Seconds = float64(a.Cycles) / s.cfg.CoreClockHz()
	r.WarpInstrs = a.IssuedInstrs
	r.ThreadInstrs = a.IntThreadInstrs + a.FPThreadInstrs + a.SFUThreadInstrs
	if a.Cycles > 0 {
		r.IPC = float64(a.IssuedInstrs) / float64(a.Cycles)
	}
	r.L1HitRate = 1
	if a.L1Reads > 0 {
		r.L1HitRate = 1 - float64(a.L1Misses)/float64(a.L1Reads)
	}
	r.L2HitRate = 1
	if rw := a.L2Reads + a.L2Writes; rw > 0 {
		r.L2HitRate = 1 - float64(a.L2Misses)/float64(rw)
	}
	r.ConstHitRate = 1
	if a.ConstReads > 0 {
		r.ConstHitRate = 1 - float64(a.ConstMisses)/float64(a.ConstReads)
	}
	// Occupancy: resident warps per busy core-cycle over the per-core
	// maximum, from the exact resident-warp integral.
	var busySum uint64
	for _, b := range a.CoreBusyCycles {
		busySum += b
	}
	if busySum > 0 {
		r.OccupancyPct = 100 * float64(a.ResidentWarpCycles) /
			(float64(busySum) * float64(s.cfg.MaxWarpsPerCore))
		if r.OccupancyPct > 100 {
			r.OccupancyPct = 100
		}
	}

	// DRAM active fraction feeds the GDDR background power split.
	// Stored via method on demand by the power model; expose busy cycles.
	a = r.Activity
	r.Activity.DRAMBusyCycles = s.mem.dram.totalBusy()
	return r
}

// DRAMActiveFraction derives the fraction of time DRAM banks were active.
func (r *Result) DRAMActiveFraction(channels int) float64 {
	if r.Activity.Cycles == 0 || channels == 0 {
		return 0
	}
	f := float64(r.Activity.DRAMBusyCycles) / float64(uint64(channels)*r.Activity.Cycles)
	if f > 1 {
		f = 1
	}
	return f
}
