package sim

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// GPU is the cycle-level simulator instance for one configuration.
type GPU struct {
	cfg *config.GPU
}

// New validates the configuration and builds a simulator.
func New(cfg *config.GPU) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WarpSize != kernel.WarpSize {
		return nil, fmt.Errorf("sim: config warp size %d unsupported (ISA is %d-wide)", cfg.WarpSize, kernel.WarpSize)
	}
	return &GPU{cfg: cfg}, nil
}

// Config returns the simulated configuration.
func (g *GPU) Config() *config.GPU { return g.cfg }

// gpuSim is the per-run state.
type gpuSim struct {
	cfg    *config.GPU
	cores  []*coreState
	mem    *memSys
	act    Activity
	launch *kernel.Launch
	global *kernel.GlobalMem
	cmem   *kernel.ConstMem

	policy    string
	activeSet int

	// Block dispatch.
	nextBlock   int
	totalBlocks int
	blockSMem   int
	blockRegs   int
	blockDemand struct{ warps int }
	retired     int
}

// Run simulates one kernel launch and returns the activity and performance
// results. The global memory image is updated in place (functional
// execution), exactly as a real launch would.
func (g *GPU) Run(l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if cmem == nil {
		cmem = kernel.NewConstMem(0)
	}
	cfg := g.cfg

	s := &gpuSim{cfg: cfg, launch: l, global: global, cmem: cmem}
	s.policy = cfg.SchedulerPolicy
	if s.policy == "" {
		s.policy = PolicyRR
	}
	s.activeSet = cfg.ActiveWarpsPerSched
	if s.activeSet <= 0 {
		s.activeSet = 8
	}
	s.act.CoreBusyCycles = make([]uint64, cfg.NumCores())
	s.act.ClusterBusyCycles = make([]uint64, cfg.Clusters)

	mem, err := newMemSys(cfg)
	if err != nil {
		return nil, err
	}
	s.mem = mem
	for i := 0; i < cfg.NumCores(); i++ {
		c, err := newCoreState(i, cfg)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
	}

	// Per-block resource demand.
	s.totalBlocks = l.Grid.Count()
	s.blockDemand.warps = l.WarpsPerBlock()
	s.blockSMem = l.SMemBytes()
	s.blockRegs = l.WarpsPerBlock() * kernel.WarpSize * l.Prog.NumRegs
	if !s.cores[0].canAccept(s.blockDemand.warps, s.blockSMem, s.blockRegs) {
		return nil, fmt.Errorf("sim: block of %d warps / %d B smem / %d regs does not fit on a %s core",
			s.blockDemand.warps, s.blockSMem, s.blockRegs, cfg.Name)
	}

	// Kernel launch traffic over PCIe: parameters + launch descriptor.
	s.act.PCIeBytes += uint64(4*len(l.Params)) + 256

	if err := s.run(); err != nil {
		return nil, err
	}
	s.mem.finalize(&s.act)

	return s.result(), nil
}

// run is the main clock loop.
func (s *gpuSim) run() error {
	const maxCycles = 1 << 34
	var cycle uint64
	for {
		s.dispatch(cycle)

		anyBusy := false
		for _, c := range s.cores {
			if !c.residentWarps() && len(c.events) == 0 {
				continue
			}
			anyBusy = true
			c.drainEvents(cycle, &s.act)
			s.drainRetirements(c)
			c.fetchStage(cycle, &s.act)
			if err := s.issueStage(c, cycle); err != nil {
				return err
			}
			s.act.CoreBusyCycles[c.id]++
		}

		// Cluster occupancy for the base-power model.
		for cl := 0; cl < s.cfg.Clusters; cl++ {
			busy := false
			for i := cl * s.cfg.CoresPerCluster; i < (cl+1)*s.cfg.CoresPerCluster; i++ {
				if s.cores[i].residentWarps() {
					busy = true
					break
				}
			}
			if busy {
				s.act.ClusterBusyCycles[cl]++
			}
		}
		if s.nextBlock < s.totalBlocks || anyBusy {
			s.act.GlobalSchedCycles++
		}

		cycle++
		if !anyBusy && s.nextBlock >= s.totalBlocks {
			break
		}
		if cycle > maxCycles {
			return fmt.Errorf("sim: cycle budget exceeded for kernel %s (deadlock?)", s.launch.Prog.Name)
		}
	}
	s.act.Cycles = cycle
	return nil
}

// dispatch hands pending blocks to cores, filling empty clusters before
// doubling up — the hardware scheduler behaviour that produces the Fig. 4
// power staircase: "blocks are distributed first not only to unoccupied
// cores, but also to unoccupied clusters".
func (s *gpuSim) dispatch(cycle uint64) {
	for s.nextBlock < s.totalBlocks {
		best := -1
		bestKey := [3]int{1 << 30, 1 << 30, 1 << 30}
		for _, c := range s.cores {
			if !c.canAccept(s.blockDemand.warps, s.blockSMem, s.blockRegs) {
				continue
			}
			clusterLoad := 0
			for i := c.cluster * s.cfg.CoresPerCluster; i < (c.cluster+1)*s.cfg.CoresPerCluster; i++ {
				clusterLoad += s.cores[i].residentBlocks()
			}
			key := [3]int{clusterLoad, c.residentBlocks(), c.id}
			if key[0] < bestKey[0] || (key[0] == bestKey[0] && (key[1] < bestKey[1] ||
				(key[1] == bestKey[1] && key[2] < bestKey[2]))) {
				best, bestKey = c.id, key
			}
		}
		if best < 0 {
			return
		}
		c := s.cores[best]
		bid := s.nextBlock
		s.nextBlock++
		cx := bid % s.launch.Grid.X
		cy := bid / s.launch.Grid.X
		bctx := kernel.NewBlockCtx(s.launch, cx, cy)
		env := &kernel.Env{Global: s.global, Const: s.cmem, Block: bctx}
		c.place(s.launch, env, s.blockSMem, s.blockRegs, &s.act)
		s.act.BlocksLaunched++
		// The global scheduler writes the launch descriptor to the core.
		s.act.PCIeBytes += 0 // launch metadata stays on chip
		// One dispatch per cycle: mirrors the serial hardware scheduler.
		break
	}
}

// maybeReleaseBarrier releases a block's barrier once every live warp waits.
func (s *gpuSim) maybeReleaseBarrier(c *coreState, b *blockRt) {
	if b.atBarrier == 0 || b.atBarrier+b.finished < b.total {
		return
	}
	for _, slot := range b.slots {
		if c.slots[slot].active && c.slots[slot].w.AtBarrier {
			c.slots[slot].w.ReleaseBarrier()
		}
	}
	b.atBarrier = 0
}

// maybeRetireBlock frees a block once all warps finished and all in-flight
// instructions drained.
func (s *gpuSim) maybeRetireBlock(c *coreState, b *blockRt) {
	if b.finished == b.total && b.outstanding == 0 {
		c.retire(b, s.blockSMem, s.blockRegs)
		s.retired++
	}
}

// drainRetirements retires any blocks that completed via event drains.
func (s *gpuSim) drainRetirements(c *coreState) {
	for i := 0; i < len(c.blocks); {
		b := c.blocks[i]
		if b.finished == b.total && b.outstanding == 0 {
			c.retire(b, s.blockSMem, s.blockRegs)
			s.retired++
			continue // retire spliced the slice
		}
		i++
	}
}

// result assembles the Result from the collected activity.
func (s *gpuSim) result() *Result {
	a := s.act
	r := &Result{Activity: a}
	r.Seconds = float64(a.Cycles) / s.cfg.CoreClockHz()
	r.WarpInstrs = a.IssuedInstrs
	r.ThreadInstrs = a.IntThreadInstrs + a.FPThreadInstrs + a.SFUThreadInstrs
	if a.Cycles > 0 {
		r.IPC = float64(a.IssuedInstrs) / float64(a.Cycles)
	}
	r.L1HitRate = 1
	if a.L1Reads > 0 {
		r.L1HitRate = 1 - float64(a.L1Misses)/float64(a.L1Reads)
	}
	r.L2HitRate = 1
	if rw := a.L2Reads + a.L2Writes; rw > 0 {
		r.L2HitRate = 1 - float64(a.L2Misses)/float64(rw)
	}
	r.ConstHitRate = 1
	if a.ConstReads > 0 {
		r.ConstHitRate = 1 - float64(a.ConstMisses)/float64(a.ConstReads)
	}
	// Occupancy: warps launched per busy core-cycle over the maximum.
	var busySum uint64
	for _, b := range a.CoreBusyCycles {
		busySum += b
	}
	if busySum > 0 {
		// Approximate resident-warp integral by warps*runtime share.
		r.OccupancyPct = 100 * float64(a.WarpsLaunched) /
			float64(uint64(s.cfg.MaxWarpsPerCore)*uint64(a.BlocksLaunched)) *
			float64(s.blockDemand.warps) / float64(s.blockDemand.warps)
		if r.OccupancyPct > 100 {
			r.OccupancyPct = 100
		}
	}

	// DRAM active fraction feeds the GDDR background power split.
	// Stored via method on demand by the power model; expose busy cycles.
	a = r.Activity
	r.Activity.DRAMBusyCycles = s.mem.dram.totalBusy()
	return r
}

// DRAMActiveFraction derives the fraction of time DRAM banks were active.
func (r *Result) DRAMActiveFraction(channels int) float64 {
	if r.Activity.Cycles == 0 || channels == 0 {
		return 0
	}
	f := float64(r.Activity.DRAMBusyCycles) / float64(uint64(channels)*r.Activity.Cycles)
	if f > 1 {
		f = 1
	}
	return f
}
