package sim

import (
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// memLatencyKernel interleaves dependent global loads with FP work so that
// latency-hiding ability differentiates scheduling policies.
func memLatencyKernel() (*kernel.Program, func() (*kernel.Launch, *kernel.GlobalMem)) {
	b := kernel.NewBuilder("memlat", 14).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 0)
	b.IShl(4, kernel.R(0), kernel.I(2))
	b.IAdd(3, kernel.R(3), kernel.R(4))
	b.MovF(5, 0)
	b.MovI(6, 0)
	b.Label("loop")
	b.Ld(kernel.SpaceGlobal, 7, kernel.R(3), 0) // dependent load
	b.FAdd(5, kernel.R(5), kernel.R(7))
	b.FFma(5, kernel.R(5), kernel.F(1.0001), kernel.F(0.125))
	b.IAdd(6, kernel.R(6), kernel.I(1))
	b.ISet(8, kernel.CmpLT, kernel.R(6), kernel.I(8))
	b.When(8).Bra("loop", "store")
	b.Label("store")
	b.LdParam(9, 1)
	b.IAdd(9, kernel.R(9), kernel.R(4))
	b.St(kernel.SpaceGlobal, kernel.R(9), kernel.R(5), 0)
	b.Exit()
	prog := b.MustBuild()
	mk := func() (*kernel.Launch, *kernel.GlobalMem) {
		mem := kernel.NewGlobalMem()
		const n = 16 * 4 * 256
		in := mem.AllocZeroF32(n)
		out := mem.AllocZeroF32(n)
		return &kernel.Launch{
			Prog:   prog,
			Grid:   kernel.Dim{X: n / 256, Y: 1},
			Block:  kernel.Dim{X: 256, Y: 1},
			Params: []uint32{in, out},
		}, mem
	}
	return prog, mk
}

func runPolicy(t *testing.T, policy string) *Result {
	t.Helper()
	cfg := config.GTX580()
	cfg.SchedulerPolicy = policy
	_, mk := memLatencyKernel()
	l, mem := mk()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAllPoliciesProduceCorrectResults(t *testing.T) {
	// Scheduling must never change functional results, only timing.
	prog, mk := memLatencyKernel()
	_ = prog
	var ref []float32
	for _, policy := range []string{"", "rr", "gto", "twolevel"} {
		cfg := config.GT240()
		cfg.SchedulerPolicy = policy
		l, mem := mk()
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(l, mem, nil); err != nil {
			t.Fatalf("%q: %v", policy, err)
		}
		out := mem.ReadF32Slice(l.Params[1], 64)
		if ref == nil {
			ref = out
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("policy %q: out[%d] = %v differs from baseline %v", policy, i, out[i], ref[i])
			}
		}
	}
}

func TestPoliciesRunAndDiffer(t *testing.T) {
	rr := runPolicy(t, "rr")
	gto := runPolicy(t, "gto")
	two := runPolicy(t, "twolevel")
	if rr.Activity.Cycles == 0 || gto.Activity.Cycles == 0 || two.Activity.Cycles == 0 {
		t.Fatal("policies must complete")
	}
	// The policies must actually change scheduling behaviour; identical
	// cycle counts across all three would mean the policy plumbing is dead.
	if rr.Activity.Cycles == gto.Activity.Cycles && rr.Activity.Cycles == two.Activity.Cycles {
		t.Error("all policies produced identical timing; policy not wired through")
	}
	// Sanity: no policy should be catastrophically worse (> 3x) on this
	// latency-bound kernel.
	worst := rr.Activity.Cycles
	for _, c := range []uint64{gto.Activity.Cycles, two.Activity.Cycles} {
		if c > worst {
			worst = c
		}
	}
	if worst > 3*rr.Activity.Cycles {
		t.Errorf("a policy is pathologically slow: %d vs rr %d", worst, rr.Activity.Cycles)
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	cfg := config.GT240()
	cfg.SchedulerPolicy = "magic"
	if _, err := New(cfg); err == nil {
		t.Error("unknown policy must be rejected")
	}
}

func TestTwoLevelActiveSetDefault(t *testing.T) {
	cfg := config.GT240()
	cfg.SchedulerPolicy = "twolevel"
	cfg.ActiveWarpsPerSched = 0 // default applies
	_, mk := memLatencyKernel()
	l, mem := mk()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(l, mem, nil); err != nil {
		t.Fatal(err)
	}
}
