// Clusterstairs: reproduce the paper's Figure 4 measurement live — run the
// same kernel with 1..12 thread blocks on the virtual GT240 and render the
// measured power waveform, showing the cluster-activation staircase and the
// global scheduler's first-block premium.
//
//	go run ./examples/clusterstairs
package main

import (
	"fmt"
	"log"
	"strings"

	"gpusimpow/internal/experiments"
)

func main() {
	r, err := experiments.Fig4()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GT240 power vs. time while launching 1..12 thread blocks")
	fmt.Printf("(sampled at %.1f kHz by the virtual DAQ; idle %.1f W)\n\n",
		r.Trace.SampleHz/1000, r.IdleW)

	// Render a coarse ASCII waveform: one row per 10 ms.
	step := int(r.Trace.SampleHz * 0.010)
	maxW := r.IdleW
	for _, s := range r.Trace.Samples {
		if s > maxW {
			maxW = s
		}
	}
	for i := 0; i+step <= len(r.Trace.Samples); i += step {
		var avg float64
		for _, s := range r.Trace.Samples[i : i+step] {
			avg += s
		}
		avg /= float64(step)
		width := int(60 * (avg - r.IdleW*0.95) / (maxW - r.IdleW*0.95))
		if width < 0 {
			width = 0
		}
		fmt.Printf("%6.0f ms %6.2f W |%s\n", r.Trace.TimeOf(i)*1000, avg, strings.Repeat("#", width))
	}

	fmt.Println()
	for i, p := range r.PowerPerBlocks {
		fmt.Printf("%2d blocks: %6.2f W\n", i+1, p)
	}
	fmt.Printf("\nfirst block premium: %.2f W; cluster step %.3f W; core step %.3f W\n",
		r.FirstBlockDeltaW, r.ClusterStepW, r.CoreStepW)
	fmt.Printf("cluster activation cost: %.3f W (paper measured 0.692 W)\n",
		r.ClusterStepW-r.CoreStepW)
}
