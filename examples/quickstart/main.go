// Quickstart: simulate one kernel on a GT240 and print its power.
//
// This is the smallest end-to-end use of GPUSimPow: build a kernel with the
// SIMT assembler, launch it on a preset architecture, and read performance
// and power results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/kernel"
)

func main() {
	// 1. Write a kernel: out[i] = a[i] * a[i] (one thread per element).
	b := kernel.NewBuilder("square", 10).Params(3)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0)) // global id
	b.LdParam(3, 2)
	b.ISet(4, kernel.CmpGE, kernel.R(0), kernel.R(3))
	b.When(4).Exit()
	b.LdParam(5, 0)
	b.IShl(6, kernel.R(0), kernel.I(2))
	b.IAdd(5, kernel.R(5), kernel.R(6))
	b.Ld(kernel.SpaceGlobal, 7, kernel.R(5), 0)
	b.FMul(7, kernel.R(7), kernel.R(7))
	b.LdParam(8, 1)
	b.IAdd(8, kernel.R(8), kernel.R(6))
	b.St(kernel.SpaceGlobal, kernel.R(8), kernel.R(7), 0)
	b.Exit()
	prog := b.MustBuild()

	// 2. Host side: allocate and fill device memory.
	const n = 4096
	mem := kernel.NewGlobalMem()
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i) * 0.25
	}
	inAddr := mem.AllocF32(in)
	outAddr := mem.AllocZeroF32(n)

	// 3. Launch on a simulated GT240.
	simr, err := core.New(config.GT240())
	if err != nil {
		log.Fatal(err)
	}
	launch := &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: n / 128, Y: 1},
		Block:  kernel.Dim{X: 128, Y: 1},
		Params: []uint32{inAddr, outAddr, n},
	}
	rep, err := simr.RunKernel(launch, mem, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Results: performance, power, and the actual data.
	fmt.Printf("kernel %q: %d cycles (%.3g s), IPC %.2f\n",
		rep.Kernel, rep.Perf.Activity.Cycles, rep.Perf.Seconds, rep.Perf.IPC)
	fmt.Printf("power: %.2f W total (%.2f static + %.2f dynamic), DRAM %.2f W\n",
		rep.Power.TotalW, rep.Power.StaticW, rep.Power.DynamicW, rep.Power.DRAMW)
	out := mem.ReadF32Slice(outAddr, 4)
	fmt.Printf("out[0..3] = %v (want [0 0.0625 0.25 0.5625])\n", out)
}
