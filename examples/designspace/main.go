// Designspace: the architect's use case the paper motivates — "computer
// architects can evaluate design choices early from a power perspective".
// This example sweeps core count and process node for a GT240-derived
// architecture and prints performance, power and energy for a fixed
// workload, showing where the energy-optimal configuration sits.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
)

func evaluate(cfg *config.GPU) (cycles uint64, totalW, energyMJ float64, err error) {
	simr, err := core.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	inst, err := bench.MatrixMul()
	if err != nil {
		return 0, 0, 0, err
	}
	var e float64
	for _, r := range inst.Runs {
		rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
		if err != nil {
			return 0, 0, 0, err
		}
		cycles += rep.Perf.Activity.Cycles
		totalW = rep.Power.TotalW
		e += rep.Power.TotalW * rep.Power.Seconds
	}
	if err := inst.Verify(); err != nil {
		return 0, 0, 0, err
	}
	return cycles, totalW, e * 1e3, nil
}

func main() {
	fmt.Println("Design space: matrixMul on GT240-derived architectures")
	fmt.Printf("%-24s %10s %9s %11s\n", "Variant", "Cycles", "Power W", "Energy mJ")

	for _, clusters := range []int{2, 4, 8} {
		cfg := config.GT240()
		cfg.Name = fmt.Sprintf("GT240-%dc", clusters*cfg.CoresPerCluster)
		cfg.Clusters = clusters
		cy, w, e, err := evaluate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10d %9.2f %11.4f\n",
			fmt.Sprintf("%d cores", clusters*cfg.CoresPerCluster), cy, w, e)
	}

	for _, nm := range []float64{65, 40, 28} {
		cfg := config.GT240()
		cfg.Name = fmt.Sprintf("GT240@%gnm", nm)
		cfg.ProcessNM = nm
		cy, w, e, err := evaluate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10d %9.2f %11.4f\n", fmt.Sprintf("%g nm process", nm), cy, w, e)
	}

	sb := config.GT240()
	sb.Name = "GT240+SB"
	sb.HasScoreboard = true
	sb.ScoreboardEntries = 6
	cy, w, e, err := evaluate(sb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %10d %9.2f %11.4f\n", "with scoreboard", cy, w, e)
}
