// Imagefilter: exercise the texture-cache subsystem — the LDSTU extension
// the paper defers to "a future variant of the model". A 3x3 box blur reads
// its pixels through the texture path on a GT240 configured with an 8 KB
// texture cache, and the example reports the texture hit rate and the power
// contribution of the texture-enabled LDSTU.
//
//	go run ./examples/imagefilter
package main

import (
	"fmt"
	"log"

	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/kernel"
)

const w = 128 // square image

func buildBlur() *kernel.Program {
	b := kernel.NewBuilder("boxblur", 16).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0)) // pixel index
	b.LdParam(3, 0)                                  // texture base
	b.IAnd(4, kernel.R(0), kernel.I(w-1))            // x
	b.IShr(5, kernel.R(0), kernel.I(7))              // y (w = 128)
	b.MovF(6, 0)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			b.IAdd(7, kernel.R(4), kernel.I(int32(dx)))
			b.IMax(7, kernel.R(7), kernel.I(0))
			b.IMin(7, kernel.R(7), kernel.I(w-1))
			b.IAdd(8, kernel.R(5), kernel.I(int32(dy)))
			b.IMax(8, kernel.R(8), kernel.I(0))
			b.IMin(8, kernel.R(8), kernel.I(w-1))
			b.IMul(8, kernel.R(8), kernel.I(w))
			b.IAdd(7, kernel.R(7), kernel.R(8))
			b.IShl(7, kernel.R(7), kernel.I(2))
			b.IAdd(7, kernel.R(3), kernel.R(7))
			b.Ld(kernel.SpaceTexture, 9, kernel.R(7), 0)
			b.FAdd(6, kernel.R(6), kernel.R(9))
		}
	}
	b.FMul(6, kernel.R(6), kernel.F(1.0/9.0))
	b.LdParam(10, 1)
	b.IShl(11, kernel.R(0), kernel.I(2))
	b.IAdd(10, kernel.R(10), kernel.R(11))
	b.St(kernel.SpaceGlobal, kernel.R(10), kernel.R(6), 0)
	b.Exit()
	return b.MustBuild()
}

func main() {
	cfg := config.GT240()
	cfg.Name = "GT240+tex"
	cfg.TexCacheKB = 8
	cfg.TexLineB = 32

	simr, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	mem := kernel.NewGlobalMem()
	img := make([]float32, w*w)
	for i := range img {
		img[i] = float32((i*37)%251) / 251
	}
	imgAddr := mem.AllocF32(img)
	outAddr := mem.AllocZeroF32(w * w)

	l := &kernel.Launch{
		Prog:   buildBlur(),
		Grid:   kernel.Dim{X: w * w / 256, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{imgAddr, outAddr},
	}
	rep, err := simr.RunKernel(l, mem, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against a host reference.
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > w-1 {
			return w - 1
		}
		return v
	}
	out := mem.ReadF32Slice(outAddr, w*w)
	for i := range out {
		x, y := i%w, i/w
		var want float32
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				want += img[clamp(y+dy)*w+clamp(x+dx)]
			}
		}
		want *= 1.0 / 9.0
		if d := out[i] - want; d > 1e-4 || d < -1e-4 {
			log.Fatalf("pixel %d: got %v, want %v", i, out[i], want)
		}
	}

	a := rep.Perf.Activity
	fmt.Printf("3x3 box blur, %dx%d image, texture path on %s\n", w, w, cfg.Name)
	fmt.Printf("texture reads: %d, misses: %d (hit rate %.1f%%)\n",
		a.TexReads, a.TexMisses, 100*(1-float64(a.TexMisses)/float64(a.TexReads)))
	fmt.Printf("runtime %.3g s, power %.2f W total (%.2f dynamic)\n",
		rep.Power.Seconds, rep.Power.TotalW, rep.Power.DynamicW)
	fmt.Println("verification: OK")
}
