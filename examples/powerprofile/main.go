// Powerprofile: the Section V-B use case — break a kernel's power down to
// individual hardware components, on both evaluated GPUs, for every
// benchmark named on the command line (default: BlackScholes, as in the
// paper's Table V).
//
//	go run ./examples/powerprofile [benchmark...]
package main

import (
	"fmt"
	"log"
	"os"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = []string{"BlackScholes"}
	}
	for _, gpu := range []func() *config.GPU{config.GT240, config.GTX580} {
		cfg := gpu()
		simr, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range names {
			f, err := bench.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			inst, err := f.Make()
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range inst.Runs {
				rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
				if err != nil {
					log.Fatal(err)
				}
				if err := rep.WriteProfile(os.Stdout); err != nil {
					log.Fatal(err)
				}
				fmt.Println()
			}
			if err := inst.Verify(); err != nil {
				log.Fatalf("%s on %s: %v", name, cfg.Name, err)
			}
		}
	}
}
