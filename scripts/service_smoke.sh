#!/bin/sh
# Service smoke test for `make ci`: build the daemon and the experiment
# CLI, start gpowd on an ephemeral loopback port, run the cheapest sweep
# scenario both in-process and through the daemon, and diff (1) the
# streamed NDJSON cell records and (2) the reduced report JSON
# (in-process sweep.BuildReport vs the daemon's GET
# /v1/jobs/{id}/report) byte for byte. The two paths share one wire
# layer (internal/sweep CellRecord / Report) and one determinism
# contract, so any difference is a bug.
set -eu

. ./scripts/service_lib.sh

scenario=${1:-ablation-processnode}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/gpowd" ./cmd/gpowd
go build -o "$tmp/gpowexp" ./cmd/gpowexp

"$tmp/gpowd" -addr 127.0.0.1:0 2>"$tmp/gpowd.log" &
pid=$!
addr=$(wait_listen "$tmp/gpowd.log" "$pid" "service smoke: gpowd")

"$tmp/gpowexp" run "$scenario" -json >"$tmp/local.ndjson"
"$tmp/gpowexp" -remote "$addr" run "$scenario" -json >"$tmp/remote.ndjson"

if ! diff "$tmp/local.ndjson" "$tmp/remote.ndjson"; then
    echo "service smoke: FAIL — remote records diverge from in-process run" >&2
    exit 1
fi

"$tmp/gpowexp" run "$scenario" -report-json >"$tmp/local-report.json"
"$tmp/gpowexp" -remote "$addr" run "$scenario" -report-json >"$tmp/remote-report.json"

if ! diff "$tmp/local-report.json" "$tmp/remote-report.json"; then
    echo "service smoke: FAIL — server-side reduced report diverges from in-process reduction" >&2
    exit 1
fi

"$tmp/gpowexp" run "$scenario" -report >"$tmp/local-report.txt"
"$tmp/gpowexp" -remote "$addr" run "$scenario" -report >"$tmp/remote-report.txt"

if ! diff "$tmp/local-report.txt" "$tmp/remote-report.txt"; then
    echo "service smoke: FAIL — rendered remote report diverges from in-process rendering" >&2
    exit 1
fi
echo "service smoke: OK — $scenario: $(wc -l <"$tmp/local.ndjson") cell record(s) + reduced report identical in-process and via $addr"
