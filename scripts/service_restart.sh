#!/bin/sh
# Crash/restart drill for `make ci`: kill gpowd mid-job and prove the
# full fault-tolerance chain end to end.
#
#   1. Run the scenario in-process: the uninterrupted ground truth.
#   2. Start gpowd on a pre-picked ephemeral port with -state-dir and
#      the crash-after-journal-append faultpoint armed to fire on the
#      4th journal append — submission, the running transition, and the
#      first cell record land on disk, then the daemon dies (exit 137)
#      while journaling the second cell, mid-stream from the client's
#      point of view.
#   3. A backgrounded `gpowexp -remote run -json` rides through the
#      outage: its self-healing client backs off, reconnects, and
#      resumes the cell stream with ?from=N.
#   4. Restart gpowd on the same port and state dir, faultpoint
#      disarmed. Recovery replays the journal, re-queues the
#      interrupted job, and re-executes it deterministically.
#   5. Diff the client's NDJSON against the uninterrupted run byte for
#      byte, then diff the recovered daemon's reduced report
#      (gpowexp report job-1 -json) the same way.
set -eu

. ./scripts/service_lib.sh

scenario=${1:-ablation-processnode}
tmp=$(mktemp -d)
pid=""
client_pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/gpowd" ./cmd/gpowd
go build -o "$tmp/gpowexp" ./cmd/gpowexp

"$tmp/gpowexp" run "$scenario" -json >"$tmp/local.ndjson"
"$tmp/gpowexp" run "$scenario" -report-json >"$tmp/local-report.json"

# The port is picked up front (not scraped from :0) because the restarted
# daemon must come back on the address the riding client already knows.
port=$(pick_port)

# First daemon: armed to die journaling the second cell record.
require_faultpoint crash-after-journal-append
GPUSIMPOW_FAULTPOINT=crash-after-journal-append:3 \
    "$tmp/gpowd" -addr "127.0.0.1:$port" -state-dir "$tmp/state" 2>"$tmp/gpowd1.log" &
pid=$!
addr=$(wait_listen "$tmp/gpowd1.log" "$pid" "service restart: gpowd")

"$tmp/gpowexp" -remote "$addr" run "$scenario" -json >"$tmp/remote.ndjson" 2>"$tmp/client.log" &
client_pid=$!

# The faultpoint kills the daemon mid-job; wait for it to die.
wait_dead "$pid" "service restart: gpowd"
pid=""

# Second daemon: same port, same state dir, faultpoint disarmed. The
# journal must yield the interrupted job for deterministic re-execution.
"$tmp/gpowd" -addr "127.0.0.1:$port" -state-dir "$tmp/state" 2>"$tmp/gpowd2.log" &
pid=$!

if ! wait "$client_pid"; then
    client_pid=""
    echo "service restart: FAIL — client did not survive the daemon restart" >&2
    cat "$tmp/client.log" >&2
    cat "$tmp/gpowd2.log" >&2
    exit 1
fi
client_pid=""

if ! grep -q "recovered" "$tmp/gpowd2.log"; then
    echo "service restart: FAIL — restarted daemon recovered nothing from $tmp/state" >&2
    cat "$tmp/gpowd2.log" >&2
    exit 1
fi

if ! diff "$tmp/local.ndjson" "$tmp/remote.ndjson"; then
    echo "service restart: FAIL — records streamed across the crash diverge from the uninterrupted run" >&2
    exit 1
fi

# The recovered daemon's server-side reduction of the re-executed job.
"$tmp/gpowexp" -remote "$addr" report job-1 -json >"$tmp/remote-report.json"
if ! diff "$tmp/local-report.json" "$tmp/remote-report.json"; then
    echo "service restart: FAIL — recovered job's report diverges from the uninterrupted reduction" >&2
    exit 1
fi

echo "service restart: OK — $scenario: daemon killed mid-job; client resumed and $(wc -l <"$tmp/local.ndjson") cell record(s) + report match the uninterrupted run byte for byte"
