// Command freeport prints one free loopback TCP port and exits. The CI
// scripts use it to pre-pick ports a daemon must come back up on after a
// crash (a restarted process can't scrape its old port from a log), so
// ci-service, ci-restart and ci-fleet can run concurrently without a
// fixed-port collision. The port is only reserved while this process
// holds it — the usual bind-print-close race — which is fine for CI:
// the window is microseconds and the scripts fail loudly on a collision.
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeport:", err)
		os.Exit(1)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	fmt.Println(port)
}
