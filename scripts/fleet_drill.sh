#!/bin/sh
# Fleet chaos drill for `make ci` (ci-fleet): kill a backend mid-job
# under the router and prove fleet-level fault tolerance end to end.
#
#   1. Run the scenario in-process: the uninterrupted ground truth.
#   2. Predict the victim with `gpowfleet -route` — the consistent-hash
#      ring is a pure function of backend names, so the drill knows
#      which backend will own the job before anything starts.
#   3. Start two gpowd backends on pre-picked ports, the predicted
#      victim armed with crash-after-journal-append to die journaling
#      its second cell record; start gpowfleet over both.
#   4. A backgrounded `gpowexp -remote run -json` pointed at the ROUTER
#      rides through the backend loss: the router marks the victim
#      dead, re-dispatches the job to the survivor under the fleet
#      idempotency key, and the proxied stream resumes with ?from=N —
#      the client never learns a backend died.
#   5. Diff the rode-through NDJSON and the reduced report byte for
#      byte against the uninterrupted run, and assert the fleet status
#      shows the job re-homed to the survivor.
#   6. Drain rollout: revive the victim (same port, same state dir),
#      wait for the router to probe it back to healthy, drain the
#      survivor, and prove a new job routes around the drained backend
#      while the drained backend keeps serving its existing job's
#      report.
set -eu

. ./scripts/service_lib.sh

scenario=${1:-ablation-processnode}
tmp=$(mktemp -d)
b0_pid=""
b1_pid=""
rt_pid=""
client_pid=""
cleanup() {
    for p in "$b0_pid" "$b1_pid" "$rt_pid" "$client_pid"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/gpowd" ./cmd/gpowd
go build -o "$tmp/gpowexp" ./cmd/gpowexp
go build -o "$tmp/gpowfleet" ./cmd/gpowfleet

"$tmp/gpowexp" run "$scenario" -json >"$tmp/local.ndjson"
"$tmp/gpowexp" run "$scenario" -report-json >"$tmp/local-report.json"

# Backend ports are picked up front: the victim must be revivable on the
# address the router already knows.
p0=$(pick_port)
p1=$(pick_port)
backends="b0=http://127.0.0.1:$p0,b1=http://127.0.0.1:$p1"

# The ring decides the victim before anything runs.
victim=$("$tmp/gpowfleet" -backends "$backends" -route "$scenario" | cut -f3)
case "$victim" in
b0) survivor=b1 ;;
b1) survivor=b0 ;;
*)
    echo "fleet drill: -route printed unexpected owner '$victim'" >&2
    exit 1
    ;;
esac
victim_port=$p0
[ "$victim" = b1 ] && victim_port=$p1
survivor_port=$p0
[ "$survivor" = b0 ] || survivor_port=$p1
echo "fleet drill: ring owner for $scenario is $victim — arming it to die mid-job"

require_faultpoint crash-after-journal-append

start_backend() { # name port logfile [env armed]
    if [ "${4:-}" = armed ]; then
        GPUSIMPOW_FAULTPOINT=crash-after-journal-append:3 \
            "$tmp/gpowd" -addr "127.0.0.1:$2" -state-dir "$tmp/state-$1" 2>"$3" &
    else
        "$tmp/gpowd" -addr "127.0.0.1:$2" -state-dir "$tmp/state-$1" 2>"$3" &
    fi
}

start_backend "$victim" "$victim_port" "$tmp/$victim.log" armed
victim_pid=$!
start_backend "$survivor" "$survivor_port" "$tmp/$survivor.log"
survivor_pid=$!
if [ "$victim" = b0 ]; then
    b0_pid=$victim_pid b1_pid=$survivor_pid
else
    b0_pid=$survivor_pid b1_pid=$victim_pid
fi
wait_listen "$tmp/$victim.log" "$victim_pid" "fleet drill: $victim" >/dev/null
wait_listen "$tmp/$survivor.log" "$survivor_pid" "fleet drill: $survivor" >/dev/null

"$tmp/gpowfleet" -addr 127.0.0.1:0 -backends "$backends" -state-dir "$tmp/state-fleet" \
    -probe-interval 250ms 2>"$tmp/fleet.log" &
rt_pid=$!
router=$(wait_listen "$tmp/fleet.log" "$rt_pid" "fleet drill: gpowfleet")

# The ride: the client only ever talks to the router.
"$tmp/gpowexp" -remote "$router" run "$scenario" -json >"$tmp/fleet.ndjson" 2>"$tmp/client.log" &
client_pid=$!

# The faultpoint kills the victim mid-job.
wait_dead "$victim_pid" "fleet drill: $victim"
if [ "$victim" = b0 ]; then b0_pid=""; else b1_pid=""; fi

if ! wait "$client_pid"; then
    client_pid=""
    echo "fleet drill: FAIL — client did not survive the backend loss" >&2
    cat "$tmp/client.log" >&2
    cat "$tmp/fleet.log" >&2
    exit 1
fi
client_pid=""

if ! diff "$tmp/local.ndjson" "$tmp/fleet.ndjson"; then
    echo "fleet drill: FAIL — records that rode through the backend loss diverge from the uninterrupted run" >&2
    cat "$tmp/fleet.log" >&2
    exit 1
fi

"$tmp/gpowexp" -remote "$router" report job-1 -json >"$tmp/fleet-report.json"
if ! diff "$tmp/local-report.json" "$tmp/fleet-report.json"; then
    echo "fleet drill: FAIL — failed-over job's report diverges from the uninterrupted reduction" >&2
    exit 1
fi

"$tmp/gpowfleet" -remote "$router" status >"$tmp/status1.txt"
if ! grep "^job-1	" "$tmp/status1.txt" | grep -q "on $survivor "; then
    echo "fleet drill: FAIL — job-1 was not re-homed to $survivor:" >&2
    cat "$tmp/status1.txt" >&2
    cat "$tmp/fleet.log" >&2
    exit 1
fi

# --- drain rollout ---

# Revive the victim on its old address (faultpoint disarmed); the router
# must probe it back from dead to healthy.
start_backend "$victim" "$victim_port" "$tmp/$victim-2.log"
revived_pid=$!
if [ "$victim" = b0 ]; then b0_pid=$revived_pid; else b1_pid=$revived_pid; fi
wait_listen "$tmp/$victim-2.log" "$revived_pid" "fleet drill: revived $victim" >/dev/null
i=0
until "$tmp/gpowfleet" -remote "$router" status | grep -q "^$victim	healthy"; do
    if [ $i -ge 100 ]; then
        echo "fleet drill: FAIL — router never probed revived $victim back to healthy" >&2
        "$tmp/gpowfleet" -remote "$router" status >&2 || true
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done

# Drain the survivor (which owns job-1) and submit new work: it must
# route to the revived victim, not the drained affinity owner.
"$tmp/gpowfleet" -remote "$router" drain "$survivor" >/dev/null
"$tmp/gpowexp" -remote "$router" run "$scenario" -json >"$tmp/fleet2.ndjson"
if ! diff "$tmp/local.ndjson" "$tmp/fleet2.ndjson"; then
    echo "fleet drill: FAIL — job run during the drain diverges from the uninterrupted run" >&2
    exit 1
fi
"$tmp/gpowfleet" -remote "$router" status >"$tmp/status2.txt"
if grep "^job-2	" "$tmp/status2.txt" | grep -q "on $survivor "; then
    echo "fleet drill: FAIL — new job landed on drained backend $survivor:" >&2
    cat "$tmp/status2.txt" >&2
    exit 1
fi
if ! grep "^job-2	" "$tmp/status2.txt" | grep -q "on $victim "; then
    echo "fleet drill: FAIL — job-2 missing from fleet status:" >&2
    cat "$tmp/status2.txt" >&2
    exit 1
fi

# The drained survivor keeps serving its existing job.
"$tmp/gpowexp" -remote "$router" report job-1 -json >"$tmp/fleet-report-drained.json"
if ! diff "$tmp/local-report.json" "$tmp/fleet-report-drained.json"; then
    echo "fleet drill: FAIL — drained backend stopped serving its existing job's report" >&2
    exit 1
fi

echo "fleet drill: OK — $scenario: $victim killed mid-job; stream rode the failover to $survivor byte-identically; drained $survivor took no new work while still serving job-1"
