# Shared helpers for the service CI scripts (service_smoke.sh,
# service_restart.sh, fleet_drill.sh). POSIX sh; source after setting
# $tmp to the script's scratch directory.

# pick_port prints a free loopback TCP port. Use it when a process must
# be (re)started on a port known in advance — a crashed daemon's
# replacement, a backend the drill revives — instead of hardcoding one,
# so concurrent CI runs don't collide.
pick_port() {
    go run ./scripts/freeport
}

# wait_listen LOGFILE PID LABEL waits for a daemon to report its address
# ("LABEL: listening on http://ADDR") in LOGFILE and prints the URL.
# Fails loudly if the process dies first or never reports.
wait_listen() {
    _log=$1
    _pid=$2
    _label=$3
    _addr=""
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n 's/.*listening on \(http:[^ ]*\).*/\1/p' "$_log" | head -1)
        [ -n "$_addr" ] && break
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "$_label exited early:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    if [ -z "$_addr" ]; then
        echo "$_label never reported its address" >&2
        cat "$_log" >&2
        return 1
    fi
    echo "$_addr"
}

# require_faultpoint NAME checks NAME against the shared manifest
# (internal/service/faultpoints.txt) before a drill arms it via
# GPUSIMPOW_FAULTPOINT. A typo'd name would otherwise arm nothing and
# the drill would hang waiting for a crash that never comes; failing
# here turns that into an immediate, explainable error. The same
# manifest is embedded in the service binary (DeclaredFaultpoints) and
# cross-checked by gpowlint's faultpoint pass.
require_faultpoint() {
    _manifest=internal/service/faultpoints.txt
    if ! grep -qx "$1" "$_manifest"; then
        echo "unknown faultpoint '$1': not declared in $_manifest" >&2
        return 1
    fi
}

# wait_dead PID LABEL waits up to 30s for PID to exit (e.g. after a
# faultpoint fires). Fails loudly on timeout.
wait_dead() {
    _pid=$1
    _label=$2
    _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        if [ $_i -ge 300 ]; then
            echo "$_label still up after 30s (faultpoint never fired?)" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    wait "$_pid" 2>/dev/null || true
}
