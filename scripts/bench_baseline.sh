#!/bin/sh
# Regenerates BENCH_BASELINE.json: one -benchtime=1x pass over every
# benchmark in the root harness, emitted by `go test -json` and condensed by
# scripts/benchjson into a stable, diff-friendly snapshot.
#
# Usage: ./scripts/bench_baseline.sh [output-file]
set -e
cd "$(dirname "$0")/.."
out="${1:-BENCH_BASELINE.json}"
# Stage through a temp file rather than a pipe: plain sh has no pipefail, so
# a failing `go test` must abort before anything overwrites the snapshot.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -bench=. -benchtime=1x -benchmem -run=NONE -json . > "$tmp"
go run ./scripts/benchjson < "$tmp" > "$out"
echo "wrote $out"
