// Command benchjson condenses a `go test -bench -json` event stream (stdin)
// into a stable benchmark snapshot (stdout): one record per benchmark with
// its ns/op and any custom metrics, ordered as run. It backs
// scripts/bench_baseline.sh, which maintains BENCH_BASELINE.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json event schema we consume.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// Benchmark is one benchmark's condensed result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the snapshot file layout.
type Baseline struct {
	Note       string      `json:"note"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	dec := json.NewDecoder(bufio.NewReader(os.Stdin))
	base := Baseline{
		Note: "regenerate with ./scripts/bench_baseline.sh; timings are host-dependent, compare relative changes on one machine",
	}
	// A benchmark's result line arrives split over several output events
	// ("BenchmarkX \t", then "       1\t 123 ns/op ...\n"), so accumulate
	// output and parse completed lines.
	var buf strings.Builder
	flushLines := func() {
		s := buf.String()
		for {
			nl := strings.IndexByte(s, '\n')
			if nl < 0 {
				break
			}
			if b, ok := parseBenchLine(s[:nl]); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
			s = s[nl+1:]
		}
		buf.Reset()
		buf.WriteString(s)
	}
	for dec.More() {
		var ev testEvent
		if err := dec.Decode(&ev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if ev.Action != "output" {
			continue
		}
		buf.WriteString(ev.Output)
		flushLines()
	}
	flushLines()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses a benchmark result line of the form
//
//	BenchmarkName-8  <tab> 10 <tab> 123456 ns/op <tab> 42.0 some-metric
//
// returning ok=false for any other output line.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimSuffix(fields[0], "\t")}
	// Strip the -GOMAXPROCS suffix for stability across machines.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, true
}
