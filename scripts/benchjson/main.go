// Command benchjson condenses a `go test -bench -json` event stream (stdin)
// into a stable benchmark snapshot (stdout): one record per benchmark with
// its ns/op, allocation stats (-benchmem) and any custom metrics, ordered as
// run. It backs scripts/bench_baseline.sh, which maintains
// BENCH_BASELINE.json.
//
// With -compare OLD NEW it instead diffs two snapshot files: custom-metric
// drift (which must be zero — the metrics are reproduced model quantities,
// not timings) is reported separately from timing/allocation drift, and any
// metric drift makes the command exit non-zero. Used by `make bench-compare
// OLD=... NEW=...`.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json event schema we consume.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// Benchmark is one benchmark's condensed result.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the snapshot file layout.
type Baseline struct {
	Note       string      `json:"note"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) == 4 && os.Args[1] == "-compare" {
		os.Exit(compare(os.Args[2], os.Args[3]))
	}
	if len(os.Args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson < go-test-json-stream  |  benchjson -compare OLD.json NEW.json")
		os.Exit(2)
	}
	condense()
}

func condense() {
	dec := json.NewDecoder(bufio.NewReader(os.Stdin))
	base := Baseline{
		Note: "regenerate with ./scripts/bench_baseline.sh; timings are host-dependent, compare relative changes on one machine",
	}
	// A benchmark's result line arrives split over several output events
	// ("BenchmarkX \t", then "       1\t 123 ns/op ...\n"), so accumulate
	// output and parse completed lines.
	var buf strings.Builder
	flushLines := func() {
		s := buf.String()
		for {
			nl := strings.IndexByte(s, '\n')
			if nl < 0 {
				break
			}
			if b, ok := parseBenchLine(s[:nl]); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
			s = s[nl+1:]
		}
		buf.Reset()
		buf.WriteString(s)
	}
	for dec.More() {
		var ev testEvent
		if err := dec.Decode(&ev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if ev.Action != "output" {
			continue
		}
		buf.WriteString(ev.Output)
		flushLines()
	}
	flushLines()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses a benchmark result line of the form
//
//	BenchmarkName-8  <tab> 10 <tab> 123456 ns/op <tab> 16 B/op <tab> 2 allocs/op <tab> 42.0 some-metric
//
// returning ok=false for any other output line.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimSuffix(fields[0], "\t")}
	// Strip the -GOMAXPROCS suffix for stability across machines.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// compare diffs two snapshots. Exit status: 0 when no custom metric moved,
// 1 on metric drift (or unreadable input).
func compare(oldPath, newPath string) int {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	oldBy := byName(oldB)
	newBy := byName(newB)

	var names []string
	for n := range oldBy {
		names = append(names, n)
	}
	sort.Strings(names)

	metricDrift := 0
	fmt.Printf("== custom metrics (must not drift) ==\n")
	for _, n := range names {
		o := oldBy[n]
		w, ok := newBy[n]
		var keys []string
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov := o.Metrics[k]
			if !ok {
				// A removed/renamed benchmark takes its metrics with it;
				// that disappearance is drift, not a free pass.
				fmt.Printf("DRIFT %s %s: %g -> (benchmark missing)\n", n, k, ov)
				metricDrift++
				continue
			}
			nv, present := w.Metrics[k]
			switch {
			case !present:
				fmt.Printf("DRIFT %s %s: %g -> (missing)\n", n, k, ov)
				metricDrift++
			case nv != ov:
				fmt.Printf("DRIFT %s %s: %g -> %g\n", n, k, ov, nv)
				metricDrift++
			}
		}
	}
	if metricDrift == 0 {
		fmt.Printf("all custom metrics identical\n")
	}

	fmt.Printf("\n== timing and allocations (informational) ==\n")
	fmt.Printf("%-42s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs o->n")
	for _, n := range names {
		o := oldBy[n]
		w, ok := newBy[n]
		if !ok {
			fmt.Printf("%-42s %14.0f %14s\n", n, o.NsPerOp, "(removed)")
			continue
		}
		delta := "n/a"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(w.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		allocs := ""
		if o.AllocsPerOp != 0 || w.AllocsPerOp != 0 {
			allocs = fmt.Sprintf("%s->%s", fmtAllocs(o.AllocsPerOp), fmtAllocs(w.AllocsPerOp))
		}
		fmt.Printf("%-42s %14.0f %14.0f %8s %12s\n", n, o.NsPerOp, w.NsPerOp, delta, allocs)
	}
	var added []string
	for n := range newBy {
		if _, ok := oldBy[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	for _, n := range added {
		fmt.Printf("%-42s %14s %14.0f (new)\n", n, "-", newBy[n].NsPerOp)
	}

	if metricDrift > 0 {
		fmt.Printf("\n%d custom metric(s) drifted\n", metricDrift)
		return 1
	}
	return 0
}

func fmtAllocs(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func byName(b *Baseline) map[string]Benchmark {
	m := make(map[string]Benchmark, len(b.Benchmarks))
	for _, bb := range b.Benchmarks {
		m[bb.Name] = bb
	}
	return m
}
