// Package gpusimpow is a from-scratch Go reproduction of GPUSimPow, the
// GPGPU power simulation framework of Lucas, Lal, Andersch, Álvarez-Mesa
// and Juurlink (ISPASS 2013): a cycle-level SIMT GPU performance simulator
// coupled with a McPAT-style hierarchical power model, validated against
// virtual GT240 and GTX580 cards through a modeled measurement testbed.
//
// The implementation lives under internal/:
//
//	internal/kernel      SIMT ISA, assembler, functional execution
//	internal/sim         cycle-level GPU performance simulator
//	internal/sim/cache   set-associative cache tag model
//	internal/tech        technology tier (process nodes, ITRS-style scaling)
//	internal/circuit     circuit tier (CACTI-lite array/CAM/crossbar models)
//	internal/gddr        GDDR5 DRAM power (Micron methodology)
//	internal/power       architecture tier: GPGPU-Pow component models
//	internal/core        the GPUSimPow framework (sim x power coupling)
//	internal/hw          virtual cards + measurement rig (validation substrate)
//	internal/bench       Table I benchmark suite (+ needle), 19 kernels
//	internal/experiments every table and figure of the paper's evaluation
//
// Entry points: cmd/gpusimpow (simulate kernels, print power profiles),
// cmd/gpowexp (regenerate the paper's tables and figures), and the runnable
// examples under examples/.
package gpusimpow
