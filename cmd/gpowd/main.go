// Command gpowd is the sweep service daemon: it serves the scenario
// registry over HTTP, accepts sweep jobs, executes them with bounded
// concurrency over the shared simulation-result cache, and streams cell
// records as NDJSON in deterministic plan order (see docs/SERVICE.md).
//
// Usage:
//
//	gpowd [-addr 127.0.0.1:8080] [-jobs 2] [-queue 16]
//	      [-retain N] [-retain-age DUR]
//	      [-state-dir DIR] [-drain-timeout DUR]
//	      [-cache-budget-mb N] [-cache-dir DIR]
//
// The cache flags mirror the GPUSIMPOW_SIM_CACHE_BUDGET_MB and
// GPUSIMPOW_SIM_CACHE_DIR environment variables: a byte budget bounds the
// in-memory timing cache (and feeds admission control), a cache directory
// spills timing results to disk so daemon restarts replay instead of
// re-simulating.
//
// -state-dir makes jobs durable: submissions, state transitions, cell
// records, reports and the ETA calibration are journaled there, and a
// restarted daemon recovers them — completed jobs come back intact,
// queued jobs re-enqueue in submit order, and jobs the previous process
// was executing when it died re-execute bit-identically (see
// docs/SERVICE.md, "Durability and recovery"). On SIGTERM/SIGINT the
// daemon drains: it stops admitting (503), gives running jobs
// -drain-timeout to finish, then checkpoints the stragglers as
// interrupted for the next process.
//
// The retention flags bound the job table: completed (done/failed/
// canceled) jobs keep their cell records for /cells replays and /report,
// so -retain N evicts the oldest completed jobs beyond N and -retain-age
// prunes completed jobs older than the duration. Queued and running jobs
// are never pruned; 0 (the default) keeps everything. With -state-dir the
// same bounds govern the on-disk store.
//
// Drive it with gpowexp:
//
//	gpowexp -remote http://127.0.0.1:8080 list
//	gpowexp -remote http://127.0.0.1:8080 run fig6 -filter gpu=GT240
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/service"
	"gpusimpow/internal/simcache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently (each fans out internally)")
	queue := flag.Int("queue", 16, "queued-job bound; submissions beyond it are rejected 429")
	retain := flag.Int("retain", 0, "keep at most N completed jobs, oldest evicted first (0 = keep all)")
	retainAge := flag.Duration("retain-age", 0, "prune completed jobs finished longer ago than this (0 = keep all)")
	stateDir := flag.String("state-dir", "", "journal job state here and recover it on restart")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM, how long running jobs may finish before being checkpointed as interrupted")
	budgetMB := flag.Int64("cache-budget-mb", 0, "simulation-cache byte budget in MiB (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "spill simulation results to this directory")
	flag.Parse()

	opts := service.Options{
		MaxConcurrent: *jobs,
		MaxQueued:     *queue,
		RetainJobs:    *retain,
		RetainAge:     *retainAge,
		StateDir:      *stateDir,
	}
	if err := run(*addr, opts, *drainTimeout, *budgetMB, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "gpowd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts service.Options, drainTimeout time.Duration, budgetMB int64, cacheDir string) error {
	if budgetMB > 0 {
		simcache.Default().SetByteBudget(budgetMB << 20)
	}
	if cacheDir != "" {
		if err := simcache.Default().SetDir(cacheDir); err != nil {
			return err
		}
	}

	m, err := service.OpenManager(opts)
	if err != nil {
		return err
	}
	defer m.Close()
	if opts.StateDir != "" {
		if n := len(m.Jobs()); n > 0 {
			log.Printf("gpowd: recovered %d job(s) from %s", n, opts.StateDir)
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("gpowd: listening on http://%s", ln.Addr())

	srv := &http.Server{Handler: service.NewServer(m)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("gpowd: %v, draining (up to %v)", sig, drainTimeout)
		// Drain order: the manager first (stop admitting, finish or
		// checkpoint running jobs, persist everything), then the HTTP
		// server — in-flight streams keep serving while jobs wind down,
		// and /v1/healthz reports "draining" throughout.
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		m.Shutdown(ctx)
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
		log.Printf("gpowd: drained")
		return nil
	case err := <-errc:
		return err
	}
}
