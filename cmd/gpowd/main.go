// Command gpowd is the sweep service daemon: it serves the scenario
// registry over HTTP, accepts sweep jobs, executes them with bounded
// concurrency over the shared simulation-result cache, and streams cell
// records as NDJSON in deterministic plan order (see docs/SERVICE.md).
//
// Usage:
//
//	gpowd [-addr 127.0.0.1:8080] [-jobs 2] [-queue 16]
//	      [-retain N] [-retain-age DUR]
//	      [-cache-budget-mb N] [-cache-dir DIR]
//
// The cache flags mirror the GPUSIMPOW_SIM_CACHE_BUDGET_MB and
// GPUSIMPOW_SIM_CACHE_DIR environment variables: a byte budget bounds the
// in-memory timing cache (and feeds admission control), a cache directory
// spills timing results to disk so daemon restarts replay instead of
// re-simulating.
//
// The retention flags bound the job table: completed (done/failed/
// canceled) jobs keep their cell records for /cells replays and /report,
// so -retain N evicts the oldest completed jobs beyond N and -retain-age
// prunes completed jobs older than the duration. Queued and running jobs
// are never pruned; 0 (the default) keeps everything.
//
// Drive it with gpowexp:
//
//	gpowexp -remote http://127.0.0.1:8080 list
//	gpowexp -remote http://127.0.0.1:8080 run fig6 -filter gpu=GT240
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/service"
	"gpusimpow/internal/simcache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	jobs := flag.Int("jobs", 2, "jobs executing concurrently (each fans out internally)")
	queue := flag.Int("queue", 16, "queued-job bound; submissions beyond it are rejected 503")
	retain := flag.Int("retain", 0, "keep at most N completed jobs, oldest evicted first (0 = keep all)")
	retainAge := flag.Duration("retain-age", 0, "prune completed jobs finished longer ago than this (0 = keep all)")
	budgetMB := flag.Int64("cache-budget-mb", 0, "simulation-cache byte budget in MiB (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "spill simulation results to this directory")
	flag.Parse()

	opts := service.Options{
		MaxConcurrent: *jobs,
		MaxQueued:     *queue,
		RetainJobs:    *retain,
		RetainAge:     *retainAge,
	}
	if err := run(*addr, opts, *budgetMB, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "gpowd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts service.Options, budgetMB int64, cacheDir string) error {
	if budgetMB > 0 {
		simcache.Default().SetByteBudget(budgetMB << 20)
	}
	if cacheDir != "" {
		if err := simcache.Default().SetDir(cacheDir); err != nil {
			return err
		}
	}

	m := service.NewManager(opts)
	defer m.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("gpowd: listening on http://%s", ln.Addr())

	srv := &http.Server{Handler: service.NewServer(m)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("gpowd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		return nil
	case err := <-errc:
		return err
	}
}
