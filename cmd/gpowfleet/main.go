// Command gpowfleet fronts a fleet of gpowd backends with the same
// /v1/* API a single daemon serves, so clients (gpowexp -remote, the
// service.Client) point at the router and never learn the topology.
//
// Jobs are routed by consistent hashing over the plan's dominant
// timing-group key, so repeats of a scenario land on the backend whose
// simulation cache is already warm. Backends are health-probed and
// breakered (healthy / draining / dead); when one is lost its in-flight
// jobs are re-dispatched to survivors and riding NDJSON streams resume
// where they left off, byte-identically (see docs/FLEET.md).
//
// Usage:
//
//	gpowfleet -backends b0=http://h0:8080,b1=http://h1:8080
//	          [-addr 127.0.0.1:8090] [-state-dir DIR]
//	          [-probe-interval DUR] [-probe-fails N] [-spill-queue N]
//
// Dry-run the routing decision without a fleet:
//
//	gpowfleet -backends b0=...,b1=... -route fig6 [-filter gpu=GT240]
//
// Control a running router:
//
//	gpowfleet -remote http://127.0.0.1:8090 status
//	gpowfleet -remote http://127.0.0.1:8090 drain b0
//	gpowfleet -remote http://127.0.0.1:8090 undrain b0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/fleet"
	"gpusimpow/internal/sweep"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
	backends := flag.String("backends", "", "comma-separated name=url backend list (names are the ring identity; keep them stable across host moves)")
	stateDir := flag.String("state-dir", "", "journal the routing table here and recover it on restart")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period per backend")
	probeFails := flag.Int("probe-fails", 2, "consecutive probe failures before a backend is marked dead")
	spillQueue := flag.Int("spill-queue", 0, "spill new jobs off the ring owner when its queue depth reaches N (0 = never spill)")
	route := flag.String("route", "", "dry-run: print the routing key and ring owner for this scenario, then exit")
	filter := flag.String("filter", "", "cell filter for -route (key=val,...)")
	remote := flag.String("remote", "", "control a running router at this URL instead of serving")
	flag.Parse()

	if *remote != "" {
		if err := ctl(*remote, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "gpowfleet:", err)
			os.Exit(1)
		}
		return
	}

	specs, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpowfleet:", err)
		os.Exit(2)
	}

	if *route != "" {
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.Name
		}
		var f sweep.Filter
		if *filter != "" {
			if f, err = sweep.ParseFilter(strings.Split(*filter, ",")); err != nil {
				fmt.Fprintln(os.Stderr, "gpowfleet:", err)
				os.Exit(2)
			}
		}
		key, owner, err := fleet.Owner(names, sweep.JobRequest{Scenario: *route, Filter: f})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpowfleet:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\t%s\t%s\n", *route, key, owner)
		return
	}

	opts := fleet.Options{
		Backends:      specs,
		StateDir:      *stateDir,
		ProbeInterval: *probeInterval,
		ProbeFails:    *probeFails,
		SpillQueue:    *spillQueue,
		Logf:          log.Printf,
	}
	if err := run(*addr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "gpowfleet:", err)
		os.Exit(1)
	}
}

// parseBackends parses "name=url,name=url". Every backend needs an
// explicit name: names are the consistent-hash identity, and deriving
// them from URLs would reshuffle the ring whenever a backend moved hosts.
func parseBackends(s string) ([]fleet.BackendSpec, error) {
	if s == "" {
		return nil, fmt.Errorf("-backends is required (name=url,name=url,...)")
	}
	var specs []fleet.BackendSpec
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad backend %q, want name=url", part)
		}
		specs = append(specs, fleet.BackendSpec{Name: name, URL: url})
	}
	return specs, nil
}

func run(addr string, opts fleet.Options) error {
	rt, err := fleet.NewRouter(opts)
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("gpowfleet: listening on http://%s", ln.Addr())

	srv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("gpowfleet: %v, shutting down", sig)
		// The backends own the jobs; the router only needs to stop
		// serving and compact its routing table (rt.Close via defer).
		_ = srv.Close()
		return nil
	case err := <-errc:
		return err
	}
}

// ctl drives a running router's /v1/fleet API.
func ctl(base string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gpowfleet -remote URL status|drain NAME|undrain NAME")
	}
	base = strings.TrimRight(base, "/")
	switch args[0] {
	case "status":
		resp, err := http.Get(base + "/v1/fleet")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		var st fleet.FleetStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		for _, b := range st.Backends {
			fmt.Printf("%s\t%s\t%s\tqueued=%d running=%d jobs=%d\n",
				b.Name, b.State, b.URL, b.Queued, b.Running, b.Jobs)
		}
		for _, a := range st.Assignments {
			fmt.Printf("%s\t%s\ton %s (%s)\n", a.ID, a.Scenario, a.Backend, a.BackendID)
		}
		return nil
	case "drain", "undrain":
		if len(args) != 2 {
			return fmt.Errorf("usage: gpowfleet -remote URL %s NAME", args[0])
		}
		resp, err := http.Post(base+"/v1/fleet/backends/"+args[1]+"/"+args[0], "", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		fmt.Println(strings.TrimSpace(string(body)))
		return nil
	default:
		return fmt.Errorf("unknown command %q (want status|drain|undrain)", args[0])
	}
}
