package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("GT240", "", "", false, true, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatic(t *testing.T) {
	for _, gpu := range []string{"GT240", "GTX580"} {
		if err := run(gpu, "", "", true, false, "", false); err != nil {
			t.Fatalf("%s: %v", gpu, err)
		}
	}
}

func TestRunBenchmark(t *testing.T) {
	if err := run("GT240", "", "vectorAdd", false, false, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("NoSuchGPU", "", "vectorAdd", false, false, "", false); err == nil {
		t.Error("unknown GPU should error")
	}
	if err := run("GT240", "", "noSuchBench", false, false, "", false); err == nil {
		t.Error("unknown benchmark should error")
	}
	if err := run("GT240", "", "", false, false, "", false); err == nil {
		t.Error("nothing to do should error")
	}
	if err := run("GT240", "/does/not/exist.xml", "vectorAdd", false, false, "", false); err == nil {
		t.Error("missing config file should error")
	}
	if err := run("GT240", "", "", false, false, "NoSuchPreset", false); err == nil {
		t.Error("unknown dump preset should error")
	}
}

func TestDumpAndReloadConfig(t *testing.T) {
	// Round trip a preset through XML and a file: dump to stdout is hard to
	// capture portably, so exercise the config path directly via -config.
	dir := t.TempDir()
	path := filepath.Join(dir, "gt240.xml")

	// Redirect stdout for the dump.
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	dumpErr := run("", "", "", false, false, "GT240", false)
	os.Stdout = old
	f.Close()
	if dumpErr != nil {
		t.Fatal(dumpErr)
	}

	// Use the dumped config for a simulation.
	if err := run("", path, "vectorAdd", false, false, "", false); err != nil {
		t.Fatalf("simulating with dumped config: %v", err)
	}
}
