// Command gpusimpow runs GPGPU benchmark kernels on the GPUSimPow simulator
// and reports performance, power and area — the front door of the framework.
//
// Usage:
//
//	gpusimpow -gpu GT240 -bench BlackScholes     # simulate + power profile
//	gpusimpow -gpu GTX580 -static                # area / leakage / peak power
//	gpusimpow -list                              # available benchmarks
//	gpusimpow -dumpconfig GT240 > gt240.xml      # export a config
//	gpusimpow -config my.xml -bench vectorAdd    # custom architecture
package main

import (
	"flag"
	"fmt"
	"os"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/simcache"
)

func main() {
	gpuName := flag.String("gpu", "GT240", "GPU preset (GT240, GTX580)")
	cfgPath := flag.String("config", "", "XML configuration file (overrides -gpu)")
	benchName := flag.String("bench", "", "benchmark to simulate (see -list)")
	static := flag.Bool("static", false, "print static power / area / peak dynamic and exit")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	dump := flag.String("dumpconfig", "", "write the named preset as XML to stdout and exit")
	stats := flag.Bool("stats", false, "also print raw activity counters per kernel and simulation-cache statistics")
	flag.Parse()

	if err := run(*gpuName, *cfgPath, *benchName, *static, *list, *dump, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "gpusimpow:", err)
		os.Exit(1)
	}
}

func run(gpuName, cfgPath, benchName string, static, list bool, dump string, stats bool) error {
	if list {
		fmt.Println("Benchmarks (Table I + needle):")
		for _, f := range bench.Suite() {
			fmt.Printf("  %-14s %d kernel(s)\n", f.Name, f.Kernels)
		}
		return nil
	}
	if dump != "" {
		mk, ok := config.Presets()[dump]
		if !ok {
			return fmt.Errorf("unknown preset %q", dump)
		}
		return mk().WriteXML(os.Stdout)
	}

	var cfg *config.GPU
	if cfgPath != "" {
		c, err := config.LoadFile(cfgPath)
		if err != nil {
			return err
		}
		cfg = c
	} else {
		mk, ok := config.Presets()[gpuName]
		if !ok {
			return fmt.Errorf("unknown GPU %q (have GT240, GTX580)", gpuName)
		}
		cfg = mk()
	}

	simr, err := core.New(cfg)
	if err != nil {
		return err
	}

	if static {
		s := simr.Static()
		fmt.Printf("%s architectural estimates:\n", s.GPUName)
		fmt.Printf("  Area:          %8.1f mm^2 (one core: %.2f mm^2)\n", s.AreaMM2, s.CoreAreaMM2)
		fmt.Printf("  Static power:  %8.2f W\n", s.StaticW)
		fmt.Printf("  Peak dynamic:  %8.2f W\n", s.PeakDynamicW)
		for _, it := range s.Items {
			fmt.Printf("    %-20s %7.3f W\n", it.Name, it.StaticW)
		}
		return nil
	}

	if benchName == "" {
		return fmt.Errorf("nothing to do: pass -bench, -static, -list or -dumpconfig")
	}
	f, err := bench.ByName(benchName)
	if err != nil {
		return err
	}
	inst, err := f.Make()
	if err != nil {
		return err
	}
	for _, r := range inst.Runs {
		rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
		if err != nil {
			return err
		}
		fmt.Printf("== %s: %d cycles, %.3g s, IPC %.2f, %d warp instrs ==\n",
			r.Name, rep.Perf.Activity.Cycles, rep.Perf.Seconds, rep.Perf.IPC, rep.Perf.WarpInstrs)
		if err := rep.WriteProfile(os.Stdout); err != nil {
			return err
		}
		if stats {
			if err := rep.Perf.Activity.WriteTable(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	if err := inst.Verify(); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Println("verification: OK")
	if stats {
		st := simcache.Default().Stats()
		fmt.Printf("sim-cache: %d entries (%.1f MiB), %d hits (%d from disk), %d misses, %d evictions, %d bypasses\n",
			st.Entries, float64(st.Bytes)/(1<<20), st.Hits, st.DiskHits, st.Misses, st.Evictions, st.Bypasses)
	}
	return nil
}
