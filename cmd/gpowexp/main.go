// Command gpowexp regenerates the paper's evaluation artifacts — every
// table and figure of the ISPASS 2013 GPUSimPow paper, plus the
// microbenchmark, DVFS and ablation studies — from the scenario registry
// (internal/sweep). Scenarios are declarative sweeps; new ones register in
// internal/experiments without touching this command.
//
// Usage:
//
//	gpowexp list                                  # registered scenarios
//	gpowexp run <name>... [-filter axis=v[,v]] [-stats] [-v]
//	gpowexp all [-stats]                          # every paper artifact
//	gpowexp <name>...                             # shorthand for run
//
// Examples:
//
//	gpowexp run fig6 -filter gpu=GT240
//	gpowexp run dvfs -filter scale=0.5,1.0 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(os.Args[1:]...); err != nil {
		fmt.Fprintln(os.Stderr, "gpowexp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gpowexp list
       gpowexp run <scenario>... [-filter axis=value[,value]]... [-stats] [-v]
       gpowexp all [-stats]
       gpowexp <scenario>...`)
}

// dispatch interprets one command line (sans argv[0]).
func dispatch(args ...string) error {
	switch args[0] {
	case "list":
		return list(os.Stdout)
	case "run":
		return runCmd(args[1:])
	case "all":
		return runCmd(append([]string{"-all"}, args[1:]...))
	case "-h", "-help", "--help", "help":
		usage()
		return nil
	default:
		// Shorthand: bare scenario names run unfiltered (the pre-registry
		// command surface: `gpowexp table2 fig6a dvfs`).
		return runCmd(args)
	}
}

// list prints every registered scenario with its axes.
func list(w io.Writer) error {
	fmt.Fprintln(w, "Registered scenarios:")
	for _, sc := range sweep.Scenarios() {
		fmt.Fprintf(w, "  %-22s %s\n", sc.Name, sc.Title)
		if sc.Spec != nil {
			sp := sc.Spec()
			for _, ax := range sp.Axes {
				fmt.Fprintf(w, "  %-22s   axis %s:", "", ax.Name)
				for _, v := range ax.Values {
					fmt.Fprintf(w, " %s", v.Name)
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintln(w, "\nRun with: gpowexp run <scenario> [-filter axis=value[,value]]")
	return nil
}

// filterFlag collects repeatable -filter arguments.
type filterFlag []string

func (f *filterFlag) String() string     { return fmt.Sprint(*f) }
func (f *filterFlag) Set(v string) error { *f = append(*f, v); return nil }

// runCmd runs one or more scenarios with shared flags.
func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var filters filterFlag
	fs.Var(&filters, "filter", "restrict a sweep axis: axis=value[,value] (repeatable)")
	stats := fs.Bool("stats", false, "print simulation-result cache statistics after the run")
	verbose := fs.Bool("v", false, "stream per-cell progress to stderr")
	all := fs.Bool("all", false, "run every paper artifact (the `all` command)")
	// Accept flags before, between and after scenario names.
	var names []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		names = append(names, rest[0])
		rest = rest[1:]
	}
	if *all {
		if len(names) > 0 {
			return fmt.Errorf("`all` takes no scenario names")
		}
		names = []string{"table2", "table4", "table5", "fig4", "fig6a", "fig6b",
			"energyperop", "staticextrap", "dvfs", "ablation"}
	}
	if len(names) == 0 {
		usage()
		return fmt.Errorf("no scenario named (see `gpowexp list`)")
	}
	f, err := sweep.ParseFilter(filters)
	if err != nil {
		return err
	}

	if *verbose {
		// Stream per-cell completions (plan order) for every sweep the
		// scenarios execute.
		sweep.SetProgress(func(p *sweep.Plan, cr *sweep.CellResult) {
			fmt.Fprintf(os.Stderr, "gpowexp: [%d/%d] %s done\n", cr.Cell.Index+1, len(p.Cells), cr.Cell)
		})
		defer sweep.SetProgress(nil)
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := sweep.RunScenario(os.Stdout, name, f); err != nil {
			return err
		}
	}
	if *stats {
		printCacheStats(os.Stderr)
	}
	return nil
}

// printCacheStats reports the process-wide simulation-result cache counters
// after sweep jobs (the ROADMAP's cache observability item).
func printCacheStats(w io.Writer) {
	st := simcache.Default().Stats()
	fmt.Fprintf(w, "sim-cache: %d entries (%.1f MiB", st.Entries, float64(st.Bytes)/(1<<20))
	if st.BudgetBytes > 0 {
		fmt.Fprintf(w, " of %.1f MiB budget", float64(st.BudgetBytes)/(1<<20))
	}
	fmt.Fprintf(w, "), %d hits, %d misses, %d evictions, %d bypasses\n",
		st.Hits, st.Misses, st.Evictions, st.Bypasses)
}
