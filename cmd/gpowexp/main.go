// Command gpowexp regenerates the paper's evaluation artifacts — every
// table and figure of the ISPASS 2013 GPUSimPow paper, plus the
// microbenchmark, DVFS and ablation studies — from the scenario registry
// (internal/sweep). Scenarios are declarative sweeps; new ones register in
// internal/experiments without touching this command.
//
// Usage:
//
//	gpowexp [-remote URL] list                    # registered scenarios
//	gpowexp [-remote URL] run <name>... [-filter axis=v[,v]] [-stats] [-v]
//	                                    [-json] [-report] [-report-json]
//	gpowexp -remote URL report <job-id>... [-json]
//	gpowexp all [-stats]                          # every paper artifact
//	gpowexp <name>...                             # shorthand for run
//
// With -remote, list and run drive a gpowd daemon over the service API
// instead of linking the simulator in-process: run submits each scenario
// as a job and consumes the daemon's NDJSON streams (the events stream
// with -v — live progress percentages — the cells stream otherwise). The
// client is self-healing: it retries on connection errors and saturation
// (429/5xx, honoring Retry-After), submits idempotently, and resumes
// severed streams where they left off — a daemon restart mid-run costs
// wall-clock, not correctness. report fetches an existing daemon job's
// server-side reduction by job ID (e.g. one recovered from a previous
// daemon process), without resubmitting anything.
//
// Output modes:
//
//   - default: the scenario's formatted report in-process; generic
//     per-cell records remotely.
//   - -json: flat NDJSON cell records, bit-identical in-process and
//     remote (`make ci`'s service smoke target diffs them).
//   - -report: the scenario's reduced report rendered as text. Remotely
//     the daemon reduces server-side (GET /v1/jobs/{id}/report) and the
//     fetched report renders through the same sweep.RenderText — the
//     bytes match the in-process run exactly.
//   - -report-json: the reduced report as JSON, one line per scenario;
//     also byte-identical between the two modes (smoke-diffed).
//
// Examples:
//
//	gpowexp run fig6 -filter gpu=GT240
//	gpowexp run dvfs -filter scale=0.5,1.0 -stats
//	gpowexp run l1sched -json > cells.ndjson
//	gpowexp run fig6 -report-json | jq .sections[0].notes
//	gpowexp -remote http://127.0.0.1:8080 run fig6 -v -report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/service"
	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

func main() {
	fs := flag.NewFlagSet("gpowexp", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.Usage = usage
	remote := fs.String("remote", "", "drive a gpowd daemon at this base URL instead of running in-process")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp { // -h/-help/--help: usage already printed
			os.Exit(0)
		}
		os.Exit(2)
	}
	args := fs.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(*remote, args...); err != nil {
		fmt.Fprintln(os.Stderr, "gpowexp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gpowexp [-remote URL] list
       gpowexp [-remote URL] run <scenario>... [-filter axis=value[,value]]... [-stats] [-v]
                                               [-json] [-report] [-report-json]
       gpowexp -remote URL report <job-id>... [-json]
       gpowexp all [-stats]
       gpowexp <scenario>...`)
}

// outputMode selects what a run emits.
type outputMode int

const (
	modeDefault    outputMode = iota // formatted report locally, generic records remotely
	modeJSON                         // NDJSON cell records
	modeReport                       // reduced report, rendered as text
	modeReportJSON                   // reduced report, JSON
)

// dispatch interprets one command line (sans argv[0] and the global
// flags). remote is the daemon base URL ("" = in-process).
func dispatch(remote string, args ...string) error {
	switch args[0] {
	case "list":
		if remote != "" {
			return listRemote(os.Stdout, remote)
		}
		return list(os.Stdout)
	case "run":
		return runCmd(remote, args[1:])
	case "report":
		if remote == "" {
			return fmt.Errorf("`report` fetches an existing daemon job's reduction; it needs -remote URL")
		}
		return reportCmd(remote, args[1:])
	case "all":
		if remote != "" {
			return fmt.Errorf("`all` mixes table-style artifacts that only exist in-process; name sweep scenarios explicitly with -remote")
		}
		return runCmd(remote, append([]string{"-all"}, args[1:]...))
	case "help": // dashed spellings are consumed by the global flag set
		usage()
		return nil
	default:
		// Shorthand: bare scenario names run unfiltered (the pre-registry
		// command surface: `gpowexp table2 fig6a dvfs`).
		return runCmd(remote, args)
	}
}

// printAxis renders one axis line of a scenario listing (shared by the
// local and remote listings so their formats cannot drift apart).
func printAxis(w io.Writer, name string, values []string) {
	fmt.Fprintf(w, "  %-22s   axis %s:", "", name)
	for _, v := range values {
		fmt.Fprintf(w, " %s", v)
	}
	fmt.Fprintln(w)
}

// list prints every registered scenario with its axes.
func list(w io.Writer) error {
	fmt.Fprintln(w, "Registered scenarios:")
	for _, sc := range sweep.Scenarios() {
		fmt.Fprintf(w, "  %-22s %s\n", sc.Name, sc.Title)
		if sc.Spec != nil {
			for _, ax := range sc.Spec().Axes {
				vals := make([]string, len(ax.Values))
				for i := range ax.Values {
					vals[i] = ax.Values[i].Name
				}
				printAxis(w, ax.Name, vals)
			}
		}
	}
	fmt.Fprintln(w, "\nRun with: gpowexp run <scenario> [-filter axis=value[,value]]")
	return nil
}

// listRemote prints the daemon's scenario metadata.
func listRemote(w io.Writer, remote string) error {
	c := &service.Client{Base: remote}
	infos, err := c.Scenarios(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Scenarios registered at", remote, "(sweep scenarios are submittable):")
	for _, in := range infos {
		kind := "table"
		if in.Sweep {
			kind = fmt.Sprintf("%d cells, %d timing runs", in.Cells, in.TimingRuns)
		}
		fmt.Fprintf(w, "  %-22s %-34s %s\n", in.Name, "("+kind+")", in.Title)
		for _, ax := range in.Axes {
			vals := make([]string, len(ax.Values))
			for i := range ax.Values {
				vals[i] = ax.Values[i].Name
			}
			printAxis(w, ax.Name, vals)
		}
	}
	return nil
}

// filterFlag collects repeatable -filter arguments.
type filterFlag []string

func (f *filterFlag) String() string     { return fmt.Sprint(*f) }
func (f *filterFlag) Set(v string) error { *f = append(*f, v); return nil }

// runCmd runs one or more scenarios with shared flags.
func runCmd(remote string, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var filters filterFlag
	fs.Var(&filters, "filter", "restrict a sweep axis: axis=value[,value] (repeatable)")
	stats := fs.Bool("stats", false, "print simulation-result cache statistics after the run")
	verbose := fs.Bool("v", false, "stream per-cell progress to stderr")
	all := fs.Bool("all", false, "run every paper artifact (the `all` command)")
	jsonOut := fs.Bool("json", false, "emit flat cell records as NDJSON instead of the formatted report (sweep scenarios only)")
	report := fs.Bool("report", false, "render the scenario's reduced report (remote: fetched from /v1/jobs/{id}/report)")
	reportJSON := fs.Bool("report-json", false, "emit the scenario's reduced report as JSON, one line per scenario")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the local run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run, post-GC) to this file")
	// Accept flags before, between and after scenario names.
	var names []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		names = append(names, rest[0])
		rest = rest[1:]
	}
	if *all {
		if len(names) > 0 {
			return fmt.Errorf("`all` takes no scenario names")
		}
		names = []string{"table2", "table4", "table5", "fig4", "fig6a", "fig6b",
			"energyperop", "staticextrap", "dvfs", "ablation"}
	}
	if len(names) == 0 {
		usage()
		return fmt.Errorf("no scenario named (see `gpowexp list`)")
	}
	f, err := sweep.ParseFilter(filters)
	if err != nil {
		return err
	}
	mode := modeDefault
	set := 0
	for _, m := range []struct {
		on   bool
		mode outputMode
	}{{*jsonOut, modeJSON}, {*report, modeReport}, {*reportJSON, modeReportJSON}} {
		if m.on {
			mode = m.mode
			set++
		}
	}
	if set > 1 {
		return fmt.Errorf("-json, -report and -report-json are mutually exclusive")
	}

	if remote != "" {
		if *stats {
			return fmt.Errorf("-stats reads the in-process cache; the daemon's counters are its own")
		}
		if *cpuProfile != "" || *memProfile != "" {
			return fmt.Errorf("-cpuprofile/-memprofile profile the local process; they cannot observe a daemon")
		}
		return runRemote(remote, names, f, mode, *verbose)
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer pf.Close()
			// Post-GC snapshot: live steady-state allocations, not the
			// churn the collector already reclaimed.
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *verbose {
		// Stream per-cell completions (plan order) for every sweep the
		// scenarios execute, with cost-weighted percentages when the
		// planner can estimate them.
		sweep.SetProgress(func(pr sweep.Progress) { progressLine(os.Stderr, &pr) })
		defer sweep.SetProgress(nil)
	}
	for i, name := range names {
		if i > 0 && mode != modeJSON && mode != modeReportJSON {
			fmt.Println()
		}
		switch mode {
		case modeJSON:
			err = runLocalJSON(os.Stdout, name, f)
		case modeReportJSON:
			err = runLocalReportJSON(os.Stdout, name, f)
		default:
			// modeReport is the default local rendering: every scenario's
			// Print already reduces and renders through sweep.RenderText.
			err = sweep.RunScenario(os.Stdout, name, f)
		}
		if err != nil {
			return err
		}
	}
	if *stats {
		printCacheStats(os.Stderr)
	}
	return nil
}

// reportCmd fetches existing daemon jobs' server-side reductions by job
// ID — how results survive their submitting client: a job recovered from
// a previous daemon process (or left over from another client's run) is
// reduced and fetched without resubmitting anything.
func reportCmd(remote string, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit each report as one JSON line instead of rendered text")
	// Accept flags before, between and after job IDs, like runCmd.
	var ids []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if len(ids) == 0 {
		return fmt.Errorf("no job ID named (see `gpowexp -remote URL run`'s job output)")
	}
	c := &service.Client{Base: remote}
	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	for i, id := range ids {
		rep, err := c.Report(ctx, id)
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if err := sweep.RenderText(os.Stdout, rep); err != nil {
			return err
		}
	}
	return nil
}

// progressLine prints one cell-completion event to w, with the
// cost-weighted percentage when the planner could estimate it — the same
// line whether the event came from the in-process hook or a daemon's
// events stream.
func progressLine(w io.Writer, pr *sweep.Progress) {
	pct := ""
	if pr.CostFraction > 0 {
		pct = fmt.Sprintf(" (%.0f%% of estimated cost)", 100*pr.CostFraction)
	}
	fmt.Fprintf(w, "gpowexp: [%d/%d] %s done%s\n", pr.Done, pr.Total, pr.Cell.CoordString(), pct)
}

// runLocalReportJSON reduces one scenario in-process and emits the typed
// report as one JSON line — the same bytes `-remote run -report-json`
// prints after fetching the daemon's server-side reduction.
func runLocalReportJSON(w io.Writer, name string, f sweep.Filter) error {
	rep, err := sweep.BuildReport(name, f)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(rep)
}

// runLocalJSON runs one sweep scenario in-process and emits its cell
// records as NDJSON — the same records a gpowd daemon streams for the
// same request, bit-identically.
func runLocalJSON(w io.Writer, name string, f sweep.Filter) error {
	req := sweep.JobRequest{Scenario: name, Filter: f}
	plan, err := req.Plan()
	if err != nil {
		return err
	}
	// A dead output (full disk, closed pipe) cancels the sweep at the
	// next cell boundary instead of simulating on into the void.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	enc := json.NewEncoder(w)
	var encErr error
	_, err = plan.RunContext(ctx, func(cr *sweep.CellResult) {
		if encErr == nil {
			if encErr = enc.Encode(plan.Record(cr)); encErr != nil {
				cancel()
			}
		}
	})
	if encErr != nil {
		return encErr
	}
	return err
}

// runRemote submits each named scenario to the daemon and consumes its
// streams: cell records (NDJSON verbatim with -json, a generic per-cell
// rendering by default) or, for the report modes, the server-side reduced
// report once the job completes. With -v the daemon's events stream
// replaces the cells stream, so progress percentages arrive live instead
// of by status polling.
func runRemote(remote string, names []string, f sweep.Filter, mode outputMode, verbose bool) error {
	c := &service.Client{Base: remote}
	if verbose {
		// Narrate the client's self-healing (retries, stream resumptions)
		// alongside the progress lines.
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gpowexp: "+format+"\n", args...)
		}
	}
	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	for i, name := range names {
		if i > 0 && mode != modeJSON && mode != modeReportJSON {
			fmt.Println()
		}
		st, err := c.Submit(ctx, sweep.JobRequest{Scenario: name, Filter: f})
		if err != nil {
			return err
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "gpowexp: job %s: %s, %d cell(s) in %d timing run(s)\n",
				st.ID, name, st.Cells, st.TimingRuns)
		}

		// Per-cell output (nothing in the report modes — they only care
		// about the finished job's reduction).
		onRecord := func(rec *sweep.CellRecord) error {
			switch mode {
			case modeJSON:
				return enc.Encode(rec)
			case modeDefault:
				printRecord(os.Stdout, rec)
			}
			return nil
		}
		switch {
		case verbose:
			err = c.StreamEvents(ctx, st.ID, func(pr *sweep.Progress) error {
				progressLine(os.Stderr, pr)
				return onRecord(pr.Cell)
			})
		case mode == modeReport || mode == modeReportJSON:
			// No per-cell output wanted: poll the few-hundred-byte status
			// until the job terminates instead of downloading (and
			// discarding) the full cell-record stream.
			err = waitJob(ctx, c, st.ID)
		default:
			err = c.StreamCells(ctx, st.ID, onRecord)
		}
		if err != nil {
			// Don't leave the daemon executing a sweep nobody is reading:
			// best-effort cancel (a no-op if the job already terminated).
			_ = c.Cancel(ctx, st.ID)
			return err
		}
		final, err := c.Job(ctx, st.ID)
		if err != nil {
			return err
		}
		if final.State != service.StateDone {
			return fmt.Errorf("job %s ended %s: %s", st.ID, final.State, final.Error)
		}
		if mode == modeReport || mode == modeReportJSON {
			rep, err := c.Report(ctx, st.ID)
			if err != nil {
				return err
			}
			if mode == modeReportJSON {
				if err := enc.Encode(rep); err != nil {
					return err
				}
			} else if err := sweep.RenderText(os.Stdout, rep); err != nil {
				return err
			}
		}
	}
	return nil
}

// waitJob polls a job's status until it reaches a terminal state, backing
// off to one poll per second; context cancellation ends the wait.
func waitJob(ctx context.Context, c *service.Client, id string) error {
	delay := 100 * time.Millisecond
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return err
		}
		switch st.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return nil
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// printRecord renders one wire cell record generically (remote runs have
// no scenario-specific reducer on this side of the wire).
func printRecord(w io.Writer, rec *sweep.CellRecord) {
	fmt.Fprintf(w, "[%d] %s  (%s, group %d)\n", rec.Index, rec.CoordString(), rec.Config, rec.Group)
	for i := range rec.Units {
		u := &rec.Units[i]
		fmt.Fprintf(w, "    %-14s", u.Name)
		if u.Timing != nil {
			fmt.Fprintf(w, " %12d cycles", u.Timing.Cycles)
		}
		if u.Power != nil {
			fmt.Fprintf(w, "  sim %7.2f W (dyn %6.2f, stat %6.2f, dram %6.2f)",
				u.Power.TotalW, u.Power.DynamicW, u.Power.StaticW, u.Power.DRAMW)
		}
		if u.Meas != nil {
			fmt.Fprintf(w, "  meas %7.2f W over %.3f s", u.Meas.AvgPowerW, u.Meas.WindowS)
		}
		fmt.Fprintln(w)
	}
}

// printCacheStats reports the process-wide simulation-result cache counters
// after sweep jobs (the ROADMAP's cache observability item).
func printCacheStats(w io.Writer) {
	st := simcache.Default().Stats()
	fmt.Fprintf(w, "sim-cache: %d entries (%.1f MiB", st.Entries, float64(st.Bytes)/(1<<20))
	if st.BudgetBytes > 0 {
		fmt.Fprintf(w, " of %.1f MiB budget", float64(st.BudgetBytes)/(1<<20))
	}
	fmt.Fprintf(w, "), %d hits (%d from disk), %d misses, %d evictions, %d bypasses\n",
		st.Hits, st.DiskHits, st.Misses, st.Evictions, st.Bypasses)
}
