// Command gpowexp regenerates the paper's evaluation artifacts: every table
// and figure of the ISPASS 2013 GPUSimPow paper, plus the microbenchmark and
// ablation studies.
//
// Usage:
//
//	gpowexp table2 | table4 | table5 | fig4 | fig6a | fig6b |
//	        energyperop | staticextrap | ablation | all
package main

import (
	"fmt"
	"os"
	"strings"

	"gpusimpow/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	for _, cmd := range os.Args[1:] {
		if err := dispatch(cmd); err != nil {
			fmt.Fprintln(os.Stderr, "gpowexp:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpowexp <table2|table4|table5|fig4|fig6a|fig6b|energyperop|staticextrap|dvfs|ablation|all> ...")
}

func dispatch(cmd string) error {
	switch cmd {
	case "table2":
		return table2()
	case "table4":
		return table4()
	case "table5":
		return table5()
	case "fig4":
		return fig4()
	case "fig6a":
		return fig6("GT240")
	case "fig6b":
		return fig6("GTX580")
	case "energyperop":
		return energyPerOp()
	case "staticextrap":
		return staticExtrap()
	case "ablation":
		return ablation()
	case "dvfs":
		return dvfs()
	case "all":
		for _, c := range []string{"table2", "table4", "table5", "fig4", "fig6a", "fig6b", "energyperop", "staticextrap", "dvfs", "ablation"} {
			if err := dispatch(c); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func table2() error {
	fmt.Println("Table II: key features of the evaluated GPU architectures")
	fmt.Printf("%-20s %12s %12s\n", "Feature", "GT240", "GTX580")
	for _, r := range experiments.Table2() {
		fmt.Printf("%-20s %12s %12s\n", r.Feature, r.GT240, r.GTX580)
	}
	return nil
}

func table4() error {
	rows, err := experiments.Table4()
	if err != nil {
		return err
	}
	fmt.Println("Table IV: static power and area (simulated vs. measured/datasheet)")
	fmt.Printf("%-8s %-10s %12s %12s\n", "GPU", "", "Static [W]", "Area [mm2]")
	for _, r := range rows {
		fmt.Printf("%-8s %-10s %12.1f %12.1f\n", r.GPU, "Simulated", r.SimStaticW, r.SimAreaMM2)
		fmt.Printf("%-8s %-10s %12.1f %12.1f\n", "", "Real", r.RealStaticW, r.RealAreaMM2)
	}
	return nil
}

func table5() error {
	rep, err := experiments.Table5()
	if err != nil {
		return err
	}
	fmt.Println("Table V: blackscholes power breakdown on GT240")
	return rep.WriteProfile(os.Stdout)
}

func fig4() error {
	r, err := experiments.Fig4()
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: GT240 power vs. thread block count (cluster staircase)")
	fmt.Printf("idle (pre/post kernel): %.2f W\n", r.IdleW)
	maxP := r.PowerPerBlocks[len(r.PowerPerBlocks)-1]
	for i, p := range r.PowerPerBlocks {
		bar := strings.Repeat("#", int(40*(p-r.IdleW)/(maxP-r.IdleW)))
		fmt.Printf("%2d block(s): %6.2f W  |%s\n", i+1, p, bar)
	}
	fmt.Printf("first block delta: %.2f W (global scheduler + cluster + core)\n", r.FirstBlockDeltaW)
	fmt.Printf("cluster step (blocks 2-4):  %.3f W\n", r.ClusterStepW)
	fmt.Printf("core step (blocks 5-12):    %.3f W\n", r.CoreStepW)
	fmt.Printf("cluster activation premium: %.3f W (paper: 0.692 W)\n", r.ClusterStepW-r.CoreStepW)
	return nil
}

func fig6(gpu string) error {
	r, err := experiments.Fig6(gpu)
	if err != nil {
		return err
	}
	sub := "6a"
	if gpu == "GTX580" {
		sub = "6b"
	}
	fmt.Printf("Figure %s: simulated vs. measured power, %s\n", sub, gpu)
	fmt.Printf("%-14s %10s %10s %10s %10s %7s %s\n",
		"Kernel", "SimStat", "SimDyn", "MeasStat", "MeasDyn", "Err%", "")
	for _, b := range r.Bars {
		note := ""
		if b.ShortWindow {
			note = "(short measurement window)"
		}
		fmt.Printf("%-14s %10.2f %10.2f %10.2f %10.2f %7.1f %s\n",
			b.Kernel, b.SimStaticW, b.SimDynamicW, b.MeasStaticW, b.MeasDynamicW, b.RelErrPct, note)
	}
	fmt.Printf("average relative error: %.1f%% (paper: %s)\n", r.AvgRelErrPct,
		map[string]string{"GT240": "11.7%", "GTX580": "10.8%"}[gpu])
	fmt.Printf("dynamic-only average relative error: %.1f%% (paper: %s)\n", r.DynAvgRelErrPct,
		map[string]string{"GT240": "28.3%", "GTX580": "20.9%"}[gpu])
	fmt.Printf("max relative error: %.1f%% on %s\n", r.MaxRelErrPct, r.MaxErrKernel)
	fmt.Printf("kernels overestimated: %.0f%%\n", 100*r.OverestimatedFraction)
	return nil
}

func energyPerOp() error {
	r, err := experiments.EnergyPerOp()
	if err != nil {
		return err
	}
	fmt.Println("Section III-D: execution unit energy via lane differencing")
	fmt.Printf("INT: measured %.1f pJ/op (model anchor %.0f pJ; paper ~40 pJ)\n", r.IntOpPJ, r.NominalIntPJ)
	fmt.Printf("FP:  measured %.1f pJ/op (model anchor %.0f pJ; paper ~75 pJ, NVIDIA reports 50 pJ)\n", r.FPOpPJ, r.NominalFPPJ)
	return nil
}

func staticExtrap() error {
	r, err := experiments.StaticExtrapolation()
	if err != nil {
		return err
	}
	fmt.Println("Section IV-B: static power by frequency extrapolation (GT240)")
	fmt.Printf("estimated %.2f W vs. true card leakage %.2f W (error %.1f%%)\n",
		r.EstimatedStaticW, r.TrueStaticW, r.ErrPct)
	return nil
}

func dvfs() error {
	r, err := experiments.DVFS()
	if err != nil {
		return err
	}
	fmt.Println("DVFS sweep: compute-bound kernel on the virtual GT240")
	fmt.Printf("%8s %10s %12s %11s\n", "Clock", "Power W", "Kernel s", "Energy mJ")
	for _, p := range r.Points {
		fmt.Printf("%7.0f%% %10.2f %12.3g %11.4f\n", p.ClockScale*100, p.PowerW, p.KernelSeconds, p.EnergyMJ)
	}
	fmt.Printf("energy-optimal clock: %.0f%% (leakage-dominated cards race to idle)\n", r.MinEnergyScale*100)
	return nil
}

func ablation() error {
	print := func(title string, rows []experiments.AblationRow, err error) error {
		if err != nil {
			return err
		}
		fmt.Println("Ablation:", title)
		fmt.Printf("  %-28s %10s %9s %9s %9s %10s\n", "Variant", "Cycles", "Total W", "Dyn W", "Stat W", "Energy mJ")
		for _, r := range rows {
			fmt.Printf("  %-28s %10d %9.2f %9.2f %9.2f %10.3f\n",
				r.Variant, r.Cycles, r.TotalW, r.DynamicW, r.StaticW, r.EnergyMJ)
		}
		return nil
	}
	rows, err := experiments.AblationScoreboard()
	if err := print("scoreboard vs. blocking issue", rows, err); err != nil {
		return err
	}
	rows, err = experiments.AblationL2()
	if err := print("L2 cache", rows, err); err != nil {
		return err
	}
	rows, err = experiments.AblationProcessNode()
	if err := print("process node sweep", rows, err); err != nil {
		return err
	}
	rows, err = experiments.AblationCoreCount()
	if err := print("core count scaling", rows, err); err != nil {
		return err
	}
	rows, err = experiments.AblationScheduler()
	return print("warp scheduler policy", rows, err)
}
