package main

import (
	"bytes"
	"strings"
	"testing"

	"gpusimpow/internal/sweep"
)

// The heavyweight artifacts (fig6a/fig6b) are covered by the experiments
// package tests and the root benchmarks; here the lighter commands run end
// to end through the CLI dispatcher.
func TestDispatchLightCommands(t *testing.T) {
	for _, cmd := range []string{"table2", "table4", "table5", "staticextrap"} {
		if err := dispatch("", cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform synthesis in -short mode")
	}
	if err := dispatch("", "fig4"); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("", "nonsense"); err == nil {
		t.Error("unknown command should error")
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := list(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "dvfs", "ablation-processnode", "axis gpu:", "axis scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunWithFilter(t *testing.T) {
	// A filtered DVFS run exercises run + repeatable -filter + -stats end
	// to end on a cheap sweep.
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5,1.0", "-stats"); err != nil {
		t.Fatal(err)
	}
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-v"); err != nil {
		t.Fatal(err)
	}
	sweep.SetProgress(nil)
}

func TestRunJSONRecords(t *testing.T) {
	// -json swaps the scenario's formatted report for NDJSON cell records
	// — the same records a gpowd daemon streams (make ci diffs them).
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-json"); err != nil {
		t.Fatal(err)
	}
	// Non-sweep scenarios have no records to emit.
	if err := dispatch("", "run", "table2", "-json"); err == nil {
		t.Error("-json on a non-sweep scenario should error")
	}
}

func TestRemoteFlagErrors(t *testing.T) {
	// These fail before any network dial: `all` mixes in-process-only
	// artifacts, and -stats reads the local cache.
	if err := dispatch("http://127.0.0.1:1", "all"); err == nil {
		t.Error("remote `all` should error")
	}
	if err := dispatch("http://127.0.0.1:1", "run", "dvfs", "-stats"); err == nil {
		t.Error("remote -stats should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := dispatch("", "run"); err == nil {
		t.Error("run with no scenario should error")
	}
	if err := dispatch("", "run", "dvfs", "-filter", "scale=2.0"); err == nil {
		t.Error("unknown filter value should error")
	}
	if err := dispatch("", "run", "table2", "-filter", "gpu=GT240"); err == nil {
		t.Error("filtering a non-sweep scenario should error")
	}
	if err := dispatch("", "run", "dvfs", "-filter", "garbage"); err == nil {
		t.Error("malformed filter should error")
	}
}
