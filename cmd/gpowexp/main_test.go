package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gpusimpow/internal/sweep"
)

// The heavyweight artifacts (fig6a/fig6b) are covered by the experiments
// package tests and the root benchmarks; here the lighter commands run end
// to end through the CLI dispatcher.
func TestDispatchLightCommands(t *testing.T) {
	for _, cmd := range []string{"table2", "table4", "table5", "staticextrap"} {
		if err := dispatch("", cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform synthesis in -short mode")
	}
	if err := dispatch("", "fig4"); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("", "nonsense"); err == nil {
		t.Error("unknown command should error")
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := list(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "dvfs", "ablation-processnode", "axis gpu:", "axis scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunWithFilter(t *testing.T) {
	// A filtered DVFS run exercises run + repeatable -filter + -stats end
	// to end on a cheap sweep.
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5,1.0", "-stats"); err != nil {
		t.Fatal(err)
	}
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-v"); err != nil {
		t.Fatal(err)
	}
	sweep.SetProgress(nil)
}

func TestRunJSONRecords(t *testing.T) {
	// -json swaps the scenario's formatted report for NDJSON cell records
	// — the same records a gpowd daemon streams (make ci diffs them).
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-json"); err != nil {
		t.Fatal(err)
	}
	// Non-sweep scenarios have no records to emit.
	if err := dispatch("", "run", "table2", "-json"); err == nil {
		t.Error("-json on a non-sweep scenario should error")
	}
}

func TestRunReportModes(t *testing.T) {
	// -report renders the reduced report (same bytes as the default local
	// rendering); -report-json emits the typed sweep.Report as JSON — the
	// same value a daemon serves from /v1/jobs/{id}/report (make ci's
	// service smoke diffs them).
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-report"); err != nil {
		t.Fatal(err)
	}
	if err := dispatch("", "run", "dvfs", "-filter", "scale=0.5", "-report-json"); err != nil {
		t.Fatal(err)
	}
	// Table-style scenarios reduce too (from scratch; no records).
	if err := dispatch("", "run", "table2", "-report-json"); err != nil {
		t.Fatal(err)
	}
	// The output modes are mutually exclusive.
	if err := dispatch("", "run", "dvfs", "-json", "-report-json"); err == nil {
		t.Error("-json with -report-json should error")
	}
	if err := dispatch("", "run", "dvfs", "-report", "-report-json"); err == nil {
		t.Error("-report with -report-json should error")
	}
}

func TestLocalReportJSONMatchesReduction(t *testing.T) {
	var buf bytes.Buffer
	if err := runLocalReportJSON(&buf, "ablation-processnode", nil); err != nil {
		t.Fatal(err)
	}
	var rep sweep.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	want, err := sweep.BuildReport("ablation-processnode", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&rep, want) {
		t.Errorf("emitted report JSON diverges from the in-process reduction")
	}
	// The rendered form of the same report is the scenario's exact text
	// output.
	var text, direct bytes.Buffer
	if err := sweep.RenderText(&text, &rep); err != nil {
		t.Fatal(err)
	}
	if err := sweep.RunScenario(&direct, "ablation-processnode", nil); err != nil {
		t.Fatal(err)
	}
	if text.String() != direct.String() {
		t.Errorf("JSON-round-tripped report renders differently:\n got %q\nwant %q", text.String(), direct.String())
	}
}

func TestRemoteFlagErrors(t *testing.T) {
	// These fail before any network dial: `all` mixes in-process-only
	// artifacts, and -stats reads the local cache.
	if err := dispatch("http://127.0.0.1:1", "all"); err == nil {
		t.Error("remote `all` should error")
	}
	if err := dispatch("http://127.0.0.1:1", "run", "dvfs", "-stats"); err == nil {
		t.Error("remote -stats should error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := dispatch("", "run"); err == nil {
		t.Error("run with no scenario should error")
	}
	if err := dispatch("", "run", "dvfs", "-filter", "scale=2.0"); err == nil {
		t.Error("unknown filter value should error")
	}
	if err := dispatch("", "run", "table2", "-filter", "gpu=GT240"); err == nil {
		t.Error("filtering a non-sweep scenario should error")
	}
	if err := dispatch("", "run", "dvfs", "-filter", "garbage"); err == nil {
		t.Error("malformed filter should error")
	}
	// Scenario-specific filter constraints (Scenario.CheckFilter) fail
	// fast — before any simulation — in every output mode.
	if err := dispatch("", "run", "fig6", "-filter", "bench=bfs"); err == nil {
		t.Error("bench-filtered fig6 should error before simulating")
	}
	if err := dispatch("", "run", "fig6", "-filter", "bench=bfs", "-report-json"); err == nil {
		t.Error("bench-filtered fig6 -report-json should error before simulating")
	}
	if err := dispatch("", "run", "energyperop", "-filter", "lanes=31"); err == nil {
		t.Error("filtered energyperop should error before simulating")
	}
}
