package main

import "testing"

// The heavyweight artifacts (fig6a/fig6b) are covered by the experiments
// package tests and the root benchmarks; here the lighter commands run end
// to end through the CLI dispatcher.
func TestDispatchLightCommands(t *testing.T) {
	for _, cmd := range []string{"table2", "table4", "table5", "staticextrap"} {
		if err := dispatch(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestDispatchFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform synthesis in -short mode")
	}
	if err := dispatch("fig4"); err != nil {
		t.Fatal(err)
	}
}

func TestDispatchUnknown(t *testing.T) {
	if err := dispatch("nonsense"); err == nil {
		t.Error("unknown command should error")
	}
}
