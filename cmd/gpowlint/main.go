// Command gpowlint is the repo-specific static analyzer suite: it
// type-checks the whole module (standard library only — go/parser, go/ast,
// go/types) and enforces the determinism and cache-partition invariants
// that the runtime equivalence tests can only catch after the fact. See
// docs/LINTS.md for the pass catalog; `make lint` runs it as part of
// `make ci`.
//
// Output is go vet style (file:line:col: message [pass]). The exit status
// is 1 when any non-warning finding exists (or 2 on operational errors);
// warnings print but pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpusimpow/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	passes := flag.String("passes", "", "comma-separated pass subset (default: all)")
	werror := flag.Bool("werror", false, "treat warnings as errors")
	list := flag.Bool("list", false, "list the passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gpowlint [-root dir] [-passes p1,p2] [-werror]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range analysis.Passes() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = findModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}

	var names []string
	if *passes != "" {
		known := map[string]bool{}
		for _, p := range analysis.Passes() {
			known[p.Name] = true
		}
		for _, n := range strings.Split(*passes, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				fatal(fmt.Errorf("unknown pass %q (run gpowlint -list)", n))
			}
			names = append(names, n)
		}
	}

	findings, err := analysis.Run(dir, names)
	if err != nil {
		fatal(err)
	}
	failed := false
	for i := range findings {
		f := &findings[i]
		fmt.Fprintln(os.Stderr, f.String(dir))
		if !f.Warning || *werror {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// findModuleRoot walks upward to the nearest directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gpowlint: no go.mod at or above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpowlint:", err)
	os.Exit(2)
}
