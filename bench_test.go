// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus simulator-throughput microbenchmarks.
// Each benchmark regenerates its artifact end to end and reports the
// headline reproduced quantity as a custom metric.
//
//	go test -bench=. -benchmem
package gpusimpow_test

import (
	"runtime"
	"testing"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/experiments"
)

// BenchmarkTable2Configs regenerates Table II (architecture features).
func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 9 {
			b.Fatal("table II incomplete")
		}
	}
}

// BenchmarkTable4StaticArea regenerates Table IV (static power and area,
// simulated vs. measured) and reports the GT240 static estimate.
func BenchmarkTable4StaticArea(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0].SimStaticW
	}
	b.ReportMetric(last, "GT240-sim-static-W")
}

// BenchmarkTable5Breakdown regenerates Table V (blackscholes power profile
// on GT240) and reports the cores' share of total power (paper: 82.2 %).
func BenchmarkTable5Breakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table5()
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range rep.Power.GPU {
			if it.Name == "Cores" {
				share = 100 * it.Total() / rep.Power.TotalW
			}
		}
	}
	b.ReportMetric(share, "cores-%-of-total")
}

// BenchmarkFig4ClusterStairs regenerates Figure 4 and reports the measured
// cluster activation cost (paper: 0.692 W).
func BenchmarkFig4ClusterStairs(b *testing.B) {
	var premium float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		premium = r.ClusterStepW - r.CoreStepW
	}
	b.ReportMetric(premium, "cluster-premium-W")
}

// BenchmarkFig6aGT240 regenerates Figure 6a (19 kernels simulated and
// measured on the GT240) and reports the average relative error
// (paper: 11.7 %).
func BenchmarkFig6aGT240(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6("GT240")
		if err != nil {
			b.Fatal(err)
		}
		avg = r.AvgRelErrPct
	}
	b.ReportMetric(avg, "avg-rel-err-%")
}

// BenchmarkFig6bGTX580 regenerates Figure 6b on the GTX580 and reports the
// average relative error (paper: 10.8 %).
func BenchmarkFig6bGTX580(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6("GTX580")
		if err != nil {
			b.Fatal(err)
		}
		avg = r.AvgRelErrPct
	}
	b.ReportMetric(avg, "avg-rel-err-%")
}

// BenchmarkEnergyPerOp regenerates the Section III-D microbenchmark and
// reports the recovered FP op energy (paper: ~75 pJ).
func BenchmarkEnergyPerOp(b *testing.B) {
	var fp float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.EnergyPerOp()
		if err != nil {
			b.Fatal(err)
		}
		fp = r.FPOpPJ
	}
	b.ReportMetric(fp, "FP-pJ-per-op")
}

// BenchmarkStaticExtrapolation regenerates the Section IV-B methodology
// check and reports its error.
func BenchmarkStaticExtrapolation(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.StaticExtrapolation()
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.ErrPct
	}
	b.ReportMetric(errPct, "extrapolation-err-%")
}

// BenchmarkAblationScoreboard, ...L2, ...ProcessNode and ...CoreCount cover
// the design-choice studies DESIGN.md calls out.
func BenchmarkAblationScoreboard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScoreboard(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationL2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationL2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProcessNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationProcessNode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCoreCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCoreCount(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulate measures simulator throughput for one benchmark on one GPU
// with the default event-driven fast-forward clock loop. The
// simulation-result cache is disabled so the numbers keep measuring the
// simulator itself (cache replay has its own benchmark below).
func benchSimulate(b *testing.B, gpu func() *config.GPU, name string) {
	b.Helper()
	cfg := gpu()
	cfg.DisableSimCache = true
	benchSimulateCfg(b, cfg, name)
}

// benchSimulateCached measures the same workload served from the
// content-addressed result cache: an untimed priming pass fills the cache,
// so every timed iteration is a steady-state hit (hash the inputs, replay
// the stored memory image, clone the result) even when the benchmark runs
// in isolation.
func benchSimulateCached(b *testing.B, gpu func() *config.GPU, name string) {
	b.Helper()
	simr, err := core.New(gpu())
	if err != nil {
		b.Fatal(err)
	}
	f, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := f.Make()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range inst.Runs {
		if _, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem); err != nil {
			b.Fatal(err)
		}
	}
	benchSimulateCfg(b, gpu(), name)
}

// benchSimulateDense measures the same simulation with the dense
// tick-every-cycle loop, quantifying the fast-forward speedup (the two modes
// are bit-identical in results; see the sim package's equivalence tests).
// The result cache is disabled too: a cache hit would replay the
// event-driven run's stored result and defeat the comparison.
func benchSimulateDense(b *testing.B, gpu func() *config.GPU, name string) {
	b.Helper()
	cfg := gpu()
	cfg.DenseClock = true
	cfg.DisableSimCache = true
	benchSimulateCfg(b, cfg, name)
}

// benchSimulateParallel measures the same workload with intra-simulation
// parallel core stepping at workers=GOMAXPROCS (see docs/PERFORMANCE.md,
// "Intra-simulation parallelism"). The custom sim-cycles metric must match
// the sequential variant bit for bit; only wall-clock may differ.
func benchSimulateParallel(b *testing.B, gpu func() *config.GPU, name string) {
	b.Helper()
	cfg := gpu()
	cfg.DisableSimCache = true
	cfg.SimWorkers = runtime.GOMAXPROCS(0)
	benchSimulateCfg(b, cfg, name)
}

func benchSimulateCfg(b *testing.B, cfg *config.GPU, name string) {
	b.Helper()
	simr, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		inst, err := f.Make()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range inst.Runs {
			rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
			if err != nil {
				b.Fatal(err)
			}
			cycles += rep.Perf.Activity.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

func BenchmarkSimVectorAddGT240(b *testing.B)    { benchSimulate(b, config.GT240, "vectorAdd") }
func BenchmarkSimBlackScholesGT240(b *testing.B) { benchSimulate(b, config.GT240, "BlackScholes") }
func BenchmarkSimMatrixMulGTX580(b *testing.B)   { benchSimulate(b, config.GTX580, "matrixMul") }
func BenchmarkSimBFSGTX580(b *testing.B)         { benchSimulate(b, config.GTX580, "bfs") }
func BenchmarkSimMergeSortGT240(b *testing.B)    { benchSimulate(b, config.GT240, "mergeSort") }

// Dense-clock counterparts: the same simulations with fast-forward disabled.
func BenchmarkSimBlackScholesGT240Dense(b *testing.B) {
	benchSimulateDense(b, config.GT240, "BlackScholes")
}
func BenchmarkSimBFSGTX580Dense(b *testing.B) { benchSimulateDense(b, config.GTX580, "bfs") }
func BenchmarkSimMatrixMulGTX580Dense(b *testing.B) {
	benchSimulateDense(b, config.GTX580, "matrixMul")
}

// Parallel-stepping counterparts: workers = GOMAXPROCS. Bit-identical
// sim-cycles by construction; wall-clock gain scales with available cores.
func BenchmarkSimVectorAddGT240Parallel(b *testing.B) {
	benchSimulateParallel(b, config.GT240, "vectorAdd")
}
func BenchmarkSimBlackScholesGT240Parallel(b *testing.B) {
	benchSimulateParallel(b, config.GT240, "BlackScholes")
}
func BenchmarkSimMatrixMulGTX580Parallel(b *testing.B) {
	benchSimulateParallel(b, config.GTX580, "matrixMul")
}
func BenchmarkSimBFSGTX580Parallel(b *testing.B) { benchSimulateParallel(b, config.GTX580, "bfs") }
func BenchmarkSimMergeSortGT240Parallel(b *testing.B) {
	benchSimulateParallel(b, config.GT240, "mergeSort")
}

// Cached counterpart: the same simulation served as content-addressed cache
// hits (hash inputs, replay the stored memory image, clone the result).
func BenchmarkSimBlackScholesGT240Cached(b *testing.B) {
	benchSimulateCached(b, config.GT240, "BlackScholes")
}

// BenchmarkDVFSSweep runs the frequency/energy study on the virtual GT240.
func BenchmarkDVFSSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.DVFS()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MinEnergyScale, "min-energy-clock-scale")
	}
}

// BenchmarkAblationScheduler covers the warp-scheduling policy study the
// paper's conclusion proposes.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScheduler(); err != nil {
			b.Fatal(err)
		}
	}
}
